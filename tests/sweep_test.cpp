// Parameterized end-to-end sweeps (TEST_P matrices): every solvable
// configuration of the benchmark families runs the full pipeline --
// check, extract, simulate exhaustively, verify T/A/V (+ strong validity
// where requested) -- across input-domain sizes, window sizes, and
// adversary parameters.
//
// Every sweep is additionally re-run through the parallel engine at 1, 2,
// and hardware_concurrency() threads; component counts, valence sets, and
// verdicts must be bit-identical to the serial checker at every thread
// count (the engine's determinism contract).
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "adversary/heard_of.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "adversary/windowed.hpp"
#include "analysis/oracles.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

// Engine determinism: the parallel checker must reproduce the serial
// result bit-for-bit at every thread count.
void expect_parallel_matches(const MessageAdversary& ma,
                             const SolvabilityOptions& options,
                             const SolvabilityResult& serial) {
  const int hw = sweep::resolve_threads(0);
  for (const int threads : {1, 2, hw}) {
    sweep::ThreadPool pool(threads);
    const SolvabilityResult parallel =
        sweep::parallel_check_solvability(ma, options, pool);
    ASSERT_EQ(parallel.verdict, serial.verdict)
        << ma.name() << " at " << threads << " threads";
    EXPECT_EQ(parallel.certified_depth, serial.certified_depth);
    ASSERT_EQ(parallel.per_depth.size(), serial.per_depth.size());
    for (std::size_t d = 0; d < serial.per_depth.size(); ++d) {
      const DepthStats& a = serial.per_depth[d];
      const DepthStats& b = parallel.per_depth[d];
      EXPECT_EQ(a.num_leaf_classes, b.num_leaf_classes);
      EXPECT_EQ(a.num_components, b.num_components);
      EXPECT_EQ(a.merged_components, b.merged_components);
      EXPECT_EQ(a.separated, b.separated);
      EXPECT_EQ(a.valent_broadcastable, b.valent_broadcastable);
      EXPECT_EQ(a.strong_assignable, b.strong_assignable);
    }
    ASSERT_EQ(parallel.analysis.has_value(), serial.analysis.has_value());
    if (serial.analysis.has_value()) {
      const DepthAnalysis& sa = *serial.analysis;
      const DepthAnalysis& pa = *parallel.analysis;
      EXPECT_EQ(pa.leaf_component, sa.leaf_component);
      ASSERT_EQ(pa.components.size(), sa.components.size());
      for (std::size_t c = 0; c < sa.components.size(); ++c) {
        EXPECT_EQ(pa.components[c].valence_mask,
                  sa.components[c].valence_mask)
            << ma.name() << " component " << c;
        EXPECT_EQ(pa.components[c].num_leaves, sa.components[c].num_leaves);
        EXPECT_EQ(pa.components[c].broadcasters,
                  sa.components[c].broadcasters);
      }
    }
  }
}

// Runs the full pipeline; asserts solvability matches `expect_solvable`
// and, when solvable, exhaustively validates the extracted algorithm.
void pipeline(const MessageAdversary& ma, bool expect_solvable,
              int num_values, bool strong, int max_depth = 6,
              std::size_t max_states = 4'000'000) {
  SolvabilityOptions options;
  options.max_depth = max_depth;
  options.num_values = num_values;
  options.max_states = max_states;
  options.strong_validity = strong;
  const SolvabilityResult result = check_solvability(ma, options);
  expect_parallel_matches(ma, options, result);
  if (!expect_solvable) {
    EXPECT_NE(result.verdict, SolvabilityVerdict::kSolvable) << ma.name();
    return;
  }
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << ma.name();
  const UniversalAlgorithm algo(*result.table);
  for (const auto& letters :
       enumerate_letter_sequences(ma, result.certified_depth)) {
    for (const InputVector& inputs :
         all_input_vectors(ma.num_processes(), num_values)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(ma, letters);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      ASSERT_TRUE(strong ? check.ok_strong() : check.ok())
          << ma.name() << " " << prefix.to_string() << ": " << check.detail;
    }
  }
}

// ---- Lossy-link subsets x input-domain size x validity mode.
using LossyParam = std::tuple<unsigned, int, bool>;
class LossySweep : public ::testing::TestWithParam<LossyParam> {};

TEST_P(LossySweep, Pipeline) {
  const auto [mask, num_values, strong] = GetParam();
  pipeline(*make_lossy_link(mask), lossy_link_solvable(mask), num_values,
           strong);
}

INSTANTIATE_TEST_SUITE_P(
    AllSubsets, LossySweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u),
                       ::testing::Values(2, 3),
                       ::testing::Values(false, true)));

// ---- Windowed lossy link: window x validity mode.
using WindowedParam = std::tuple<int, bool>;
class WindowedSweep : public ::testing::TestWithParam<WindowedParam> {};

TEST_P(WindowedSweep, Pipeline) {
  const auto [window, strong] = GetParam();
  pipeline(*make_windowed_lossy_link(window), window >= 2, 2, strong, 8);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowedSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(false, true)));

// ---- Omission adversaries: (n, f) matrix against the SW threshold.
using OmissionParam = std::tuple<int, int>;
class OmissionSweep : public ::testing::TestWithParam<OmissionParam> {};

TEST_P(OmissionSweep, Pipeline) {
  const auto [n, f] = GetParam();
  const int max_depth = n == 2 ? 6 : 3;
  pipeline(*make_omission_adversary(n, f), omission_solvable(n, f), 2,
           /*strong=*/false, max_depth, 6'000'000);
}

INSTANTIATE_TEST_SUITE_P(Budgets, OmissionSweep,
                         ::testing::Values(OmissionParam{2, 0},
                                           OmissionParam{2, 1},
                                           OmissionParam{2, 2},
                                           OmissionParam{3, 0},
                                           OmissionParam{3, 1},
                                           OmissionParam{3, 2},
                                           OmissionParam{3, 3}));

// ---- Heard-Of: (n, k) matrix; solvable iff k = n.
using HeardOfParam = std::tuple<int, int>;
class HeardOfSweep : public ::testing::TestWithParam<HeardOfParam> {};

TEST_P(HeardOfSweep, Pipeline) {
  const auto [n, k] = GetParam();
  const int max_depth = n == 2 ? 5 : 2;
  pipeline(*make_heard_of_adversary(n, k), k == n, 2, /*strong=*/false,
           max_depth, 6'000'000);
}

INSTANTIATE_TEST_SUITE_P(Degrees, HeardOfSweep,
                         ::testing::Values(HeardOfParam{2, 1},
                                           HeardOfParam{2, 2},
                                           HeardOfParam{3, 2},
                                           HeardOfParam{3, 3}));

// ---- Serialization round-trips across solvable families.
class SerializationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializationSweep, RoundTripPreservesDecisions) {
  const unsigned mask = GetParam();
  const auto ma = make_lossy_link(mask);
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_TRUE(result.table.has_value());
  std::stringstream buffer;
  result.table->save(buffer);
  const DecisionTable loaded = DecisionTable::load(buffer);
  const UniversalAlgorithm algo(loaded);
  for (const auto& letters :
       enumerate_letter_sequences(*ma, loaded.depth() + 1)) {
    for (const InputVector& inputs : all_input_vectors(2, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(*ma, letters);
      const ConsensusCheck check =
          check_consensus(simulate(algo, prefix), inputs);
      ASSERT_TRUE(check.ok()) << check.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SolvableSubsets, SerializationSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace topocon
