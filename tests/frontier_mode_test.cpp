// The adaptive frontier representation (core/frontier.cpp): forcing the
// dense direct-indexed dedup tables, forcing the sparse open-addressed
// ones, and letting the per-chunk heuristic choose must all produce the
// IDENTICAL DepthAnalysis -- every level, link, multiplicity, component,
// and even the interner's id assignment order. The representation is an
// execution detail like chunk size and thread count; these tests are the
// unit-level enforcement of the golden --frontier=dense/sparse CI lanes.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/family.hpp"
#include "adversary/omission.hpp"
#include "core/epsilon_approx.hpp"
#include "core/frontier.hpp"
#include "scenario/fuzz.hpp"

namespace topocon {
namespace {

/// Restores the process-wide default on scope exit, so tests that pin it
/// cannot leak the pin into later suites of the same binary.
class DefaultModeGuard {
 public:
  DefaultModeGuard() : saved_(default_frontier_mode()) {}
  ~DefaultModeGuard() { set_default_frontier_mode(saved_); }

 private:
  FrontierMode saved_;
};

DepthAnalysis run_with(const MessageAdversary& adversary,
                       AnalysisOptions options, FrontierMode mode) {
  options.frontier = mode;
  return analyze_depth(adversary, options);
}

void expect_analyses_identical(const DepthAnalysis& a, const DepthAnalysis& b,
                               const char* what) {
  EXPECT_EQ(a.depth, b.depth) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
  ASSERT_EQ(a.levels.size(), b.levels.size()) << what;
  for (std::size_t s = 0; s < a.levels.size(); ++s) {
    ASSERT_EQ(a.levels[s].size(), b.levels[s].size()) << what << " level "
                                                      << s;
    for (std::size_t i = 0; i < a.levels[s].size(); ++i) {
      EXPECT_EQ(a.levels[s][i].inputs, b.levels[s][i].inputs)
          << what << " level " << s << " state " << i;
      // Identical interner insertion order => identical view ids, not
      // merely isomorphic ones: the strongest determinism contract.
      EXPECT_EQ(a.levels[s][i].views, b.levels[s][i].views)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].reach, b.levels[s][i].reach)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].adv_state, b.levels[s][i].adv_state)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].multiplicity, b.levels[s][i].multiplicity)
          << what << " level " << s << " state " << i;
    }
  }
  EXPECT_EQ(a.children, b.children) << what;
  EXPECT_EQ(a.first_parent, b.first_parent) << what;
  EXPECT_EQ(a.leaf_component, b.leaf_component) << what;
  EXPECT_EQ(a.components, b.components) << what;
  EXPECT_EQ(a.valence_separated, b.valence_separated) << what;
  EXPECT_EQ(a.merged_components, b.merged_components) << what;
  EXPECT_EQ(a.valent_broadcastable, b.valent_broadcastable) << what;
  EXPECT_EQ(a.strong_assignable, b.strong_assignable) << what;
  ASSERT_NE(a.interner, nullptr) << what;
  ASSERT_NE(b.interner, nullptr) << what;
  EXPECT_EQ(a.interner->size(), b.interner->size()) << what;
}

TEST(FrontierModeNames, ParseAndPrintRoundTrip) {
  EXPECT_EQ(frontier_mode_from_name("auto"), FrontierMode::kAuto);
  EXPECT_EQ(frontier_mode_from_name("dense"), FrontierMode::kDense);
  EXPECT_EQ(frontier_mode_from_name("sparse"), FrontierMode::kSparse);
  EXPECT_FALSE(frontier_mode_from_name("bitset").has_value());
  EXPECT_FALSE(frontier_mode_from_name("").has_value());
  EXPECT_FALSE(frontier_mode_from_name("Dense").has_value());
  EXPECT_STREQ(to_string(FrontierMode::kAuto), "auto");
  EXPECT_STREQ(to_string(FrontierMode::kDense), "dense");
  EXPECT_STREQ(to_string(FrontierMode::kSparse), "sparse");
}

TEST(FrontierMode, OmissionAnalysisIsIdenticalAcrossRepresentations) {
  // The tentpole workload shape: omission n=3 has the 22-letter alphabet
  // and the frontier growth the dense path is built for.
  const auto ma = make_omission_adversary(3, 2);
  AnalysisOptions options;
  options.depth = 3;
  options.max_states = 6'000'000;
  const DepthAnalysis sparse = run_with(*ma, options, FrontierMode::kSparse);
  const DepthAnalysis dense = run_with(*ma, options, FrontierMode::kDense);
  const DepthAnalysis adaptive = run_with(*ma, options, FrontierMode::kAuto);
  expect_analyses_identical(sparse, dense, "dense vs sparse");
  expect_analyses_identical(sparse, adaptive, "auto vs sparse");
  EXPECT_GT(sparse.leaves().size(), 10'000u);  // non-trivial workload
}

TEST(FrontierMode, ComposedFuzzPointsAreIdenticalAcrossRepresentations) {
  // Two seeded composed adversaries: product/union/window compositions
  // exercise virtual transitions and non-trivial safety automata, i.e.
  // the dense state table's adversary prescan.
  scenario::FuzzSpec spec;
  spec.seed = 6;
  spec.count = 2;
  for (const FamilyPoint& point : scenario::fuzz_points(spec)) {
    const auto ma = make_family_adversary(point);
    AnalysisOptions options;
    options.depth = 3;
    const DepthAnalysis sparse =
        run_with(*ma, options, FrontierMode::kSparse);
    const DepthAnalysis dense = run_with(*ma, options, FrontierMode::kDense);
    const DepthAnalysis adaptive =
        run_with(*ma, options, FrontierMode::kAuto);
    expect_analyses_identical(sparse, dense, point.family.c_str());
    expect_analyses_identical(sparse, adaptive, point.family.c_str());
  }
}

TEST(FrontierMode, ProcessDefaultResolvesKDefault) {
  // AnalysisOptions::kDefault defers to the process-wide default (what
  // `topocon run --frontier=...` pins); whatever it is pinned to, the
  // analysis bytes cannot change.
  const auto ma = make_omission_adversary(2, 1);
  AnalysisOptions options;
  options.depth = 4;
  const DepthAnalysis sparse = run_with(*ma, options, FrontierMode::kSparse);
  DefaultModeGuard guard;
  for (const FrontierMode pinned :
       {FrontierMode::kDense, FrontierMode::kSparse, FrontierMode::kAuto}) {
    set_default_frontier_mode(pinned);
    const DepthAnalysis via_default =
        run_with(*ma, options, FrontierMode::kDefault);
    expect_analyses_identical(sparse, via_default, to_string(pinned));
  }
}

}  // namespace
}  // namespace topocon
