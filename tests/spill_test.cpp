// The out-of-core frontier tier (core/spill.*): the spill knobs resolve
// like every other execution-detail default, the per-run temp directory
// never outlives its FrontierSpill, and -- the contract everything else
// rests on -- forcing every chunk through the spill files produces the
// IDENTICAL DepthAnalysis and SolvabilityResult as the in-RAM path, at
// every chunk size and thread count. These tests are the unit-level
// enforcement of the golden --spill-budget-mb CI lanes.
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/omission.hpp"
#include "core/epsilon_approx.hpp"
#include "core/spill.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace topocon {
namespace {

/// Restores the process-wide default on scope exit, like the frontier
/// mode guard in frontier_mode_test.cpp.
class DefaultSpillGuard {
 public:
  DefaultSpillGuard() : saved_(default_spill()) {}
  ~DefaultSpillGuard() { set_default_spill(saved_); }

 private:
  SpillOptions saved_;
};

void expect_analyses_identical(const DepthAnalysis& a, const DepthAnalysis& b,
                               const char* what) {
  EXPECT_EQ(a.depth, b.depth) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
  ASSERT_EQ(a.levels.size(), b.levels.size()) << what;
  for (std::size_t s = 0; s < a.levels.size(); ++s) {
    ASSERT_EQ(a.levels[s].size(), b.levels[s].size()) << what << " level "
                                                      << s;
    for (std::size_t i = 0; i < a.levels[s].size(); ++i) {
      EXPECT_EQ(a.levels[s][i].inputs, b.levels[s][i].inputs)
          << what << " level " << s << " state " << i;
      // Identical interner insertion order => identical view ids: the
      // spilled tables must re-intern in exactly the in-RAM order.
      EXPECT_EQ(a.levels[s][i].views, b.levels[s][i].views)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].reach, b.levels[s][i].reach)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].adv_state, b.levels[s][i].adv_state)
          << what << " level " << s << " state " << i;
      EXPECT_EQ(a.levels[s][i].multiplicity, b.levels[s][i].multiplicity)
          << what << " level " << s << " state " << i;
    }
  }
  EXPECT_EQ(a.children, b.children) << what;
  EXPECT_EQ(a.first_parent, b.first_parent) << what;
  EXPECT_EQ(a.leaf_component, b.leaf_component) << what;
  EXPECT_EQ(a.components, b.components) << what;
  EXPECT_EQ(a.valence_separated, b.valence_separated) << what;
  EXPECT_EQ(a.merged_components, b.merged_components) << what;
  EXPECT_EQ(a.valent_broadcastable, b.valent_broadcastable) << what;
  EXPECT_EQ(a.strong_assignable, b.strong_assignable) << what;
  ASSERT_NE(a.interner, nullptr) << what;
  ASSERT_NE(b.interner, nullptr) << what;
  EXPECT_EQ(a.interner->size(), b.interner->size()) << what;
}

TEST(SpillKnobs, BudgetMbToBytesSaturates) {
  EXPECT_EQ(spill_budget_mb_to_bytes(0), 0u);  // 0 = disabled/inherit
  EXPECT_EQ(spill_budget_mb_to_bytes(1), std::uint64_t{1} << 20);
  EXPECT_EQ(spill_budget_mb_to_bytes(1024), std::uint64_t{1} << 30);
  EXPECT_EQ(spill_budget_mb_to_bytes(std::numeric_limits<std::uint64_t>::max()),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SpillKnobs, ResolveFallsBackToProcessDefault) {
  DefaultSpillGuard guard;
  set_default_spill(SpillOptions{});
  EXPECT_EQ(resolve_spill({}).budget_bytes, 0u);  // initial: disabled

  SpillOptions pinned;
  pinned.budget_bytes = 123;
  pinned.dir = "/tmp/topocon-spill-test-default";
  set_default_spill(pinned);
  // budget 0 inherits the whole default.
  const SpillOptions inherited = resolve_spill({});
  EXPECT_EQ(inherited.budget_bytes, 123u);
  EXPECT_EQ(inherited.dir, pinned.dir);
  // An explicit budget wins; an empty dir still falls back.
  SpillOptions partial;
  partial.budget_bytes = 456;
  const SpillOptions resolved = resolve_spill(partial);
  EXPECT_EQ(resolved.budget_bytes, 456u);
  EXPECT_EQ(resolved.dir, pinned.dir);
  // Fully explicit options pass through untouched.
  SpillOptions full;
  full.budget_bytes = 789;
  full.dir = "/tmp/topocon-spill-test-explicit";
  EXPECT_EQ(resolve_spill(full).budget_bytes, 789u);
  EXPECT_EQ(resolve_spill(full).dir, full.dir);
}

TEST(SpillLifecycle, TempSubdirIsUniqueAndRemovedOnDestruction) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "topocon-spill-lifecycle";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  SpillOptions options;
  options.budget_bytes = 1;
  options.dir = base.string();
  std::string dir_a;
  {
    FrontierSpill spill_a(options);
    FrontierSpill spill_b(options);
    dir_a = spill_a.dir();
    EXPECT_TRUE(std::filesystem::is_directory(spill_a.dir()));
    EXPECT_TRUE(std::filesystem::is_directory(spill_b.dir()));
    EXPECT_NE(spill_a.dir(), spill_b.dir());
    // The per-run subdirectory lives under the requested base.
    EXPECT_EQ(std::filesystem::path(spill_a.dir()).parent_path(), base);
  }
  EXPECT_FALSE(std::filesystem::exists(dir_a));
  std::filesystem::remove_all(base);
}

TEST(SpillDifferential, ParallelAnalysisIdenticalWithSpillForced) {
  // The tentpole workload shape: omission n=3 f=2 grows heavy levels
  // whose chunks all exceed a 1-byte budget, so EVERY chunk round-trips
  // through the spill files.
  const auto ma = make_omission_adversary(3, 2);
  AnalysisOptions options;
  options.depth = 3;
  options.max_states = 6'000'000;
  sweep::ThreadPool pool(4);
  const DepthAnalysis in_ram =
      sweep::parallel_analyze_depth(*ma, options, pool);

  AnalysisOptions spilled_options = options;
  spilled_options.spill.budget_bytes = 1;
  const DepthAnalysis spilled =
      sweep::parallel_analyze_depth(*ma, spilled_options, pool);
  expect_analyses_identical(in_ram, spilled, "spill vs in-RAM");
  EXPECT_GT(spilled.leaves().size(), 10'000u);  // non-trivial workload

  // ... and with sub-root sharding forced to its finest setting, the
  // worst case for per-chunk file counts.
  sweep::ShardingOptions finest;
  finest.chunk_states = 1;
  const DepthAnalysis spilled_finest = sweep::parallel_analyze_depth(
      *ma, spilled_options, pool, nullptr, finest);
  expect_analyses_identical(in_ram, spilled_finest,
                            "spill chunk=1 vs in-RAM");
}

TEST(SpillDifferential, SolvabilityResultIdenticalAcrossBudgets) {
  const auto ma = make_omission_adversary(3, 1);
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 6'000'000;
  sweep::ThreadPool pool(2);
  const SolvabilityResult in_ram =
      sweep::parallel_check_solvability(*ma, options, pool);

  for (const std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{1} << 20}) {
    SolvabilityOptions spilled_options = options;
    spilled_options.spill.budget_bytes = budget;
    const SolvabilityResult spilled =
        sweep::parallel_check_solvability(*ma, spilled_options, pool);
    EXPECT_EQ(spilled.verdict, in_ram.verdict) << budget;
    EXPECT_EQ(spilled.certified_depth, in_ram.certified_depth) << budget;
    EXPECT_EQ(spilled.closure_only, in_ram.closure_only) << budget;
    EXPECT_EQ(spilled.per_depth, in_ram.per_depth) << budget;
    ASSERT_TRUE(spilled.analysis.has_value()) << budget;
    ASSERT_TRUE(in_ram.analysis.has_value()) << budget;
    expect_analyses_identical(*in_ram.analysis, *spilled.analysis,
                              "solvability final analysis");
  }
}

TEST(SpillTelemetry, CountersAreCommitOnlyAndThreadCountInvariant) {
  const auto ma = make_omission_adversary(3, 1);
  AnalysisOptions options;
  options.depth = 2;
  options.max_states = 6'000'000;
  options.frontier = FrontierMode::kAuto;  // pin: counters may depend on it

  // In-RAM run: the spill section must stay all-zero.
  telemetry::MetricsRegistry dry;
  options.metrics = &dry;
  sweep::ThreadPool pool(4);
  sweep::parallel_analyze_depth(*ma, options, pool);
  EXPECT_EQ(dry.snapshot().spill.chunks_spilled, 0u);
  EXPECT_EQ(dry.snapshot().spill.bytes_written, 0u);

  // Forced spill: every committed level replays what it wrote.
  options.spill.budget_bytes = 1;
  telemetry::MetricsRegistry wet;
  options.metrics = &wet;
  sweep::parallel_analyze_depth(*ma, options, pool);
  const telemetry::SpillStats stats = wet.snapshot().spill;
  EXPECT_GT(stats.chunks_spilled, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.bytes_replayed, stats.bytes_written);
  EXPECT_GE(stats.replay_passes, 1u);

  // Deterministic at any thread count (for fixed chunk/frontier knobs).
  sweep::ThreadPool serial(1);
  telemetry::MetricsRegistry again;
  options.metrics = &again;
  sweep::parallel_analyze_depth(*ma, options, serial);
  const telemetry::SpillStats repeat = again.snapshot().spill;
  EXPECT_EQ(repeat.chunks_spilled, stats.chunks_spilled);
  EXPECT_EQ(repeat.bytes_written, stats.bytes_written);
  EXPECT_EQ(repeat.bytes_replayed, stats.bytes_replayed);
  EXPECT_EQ(repeat.replay_passes, stats.replay_passes);
}

}  // namespace
}  // namespace topocon
