// Misuse guards of ViewInterner: the interner is single-threaded state
// (one instance per shard in the parallel engine); sharing one across
// concurrently mutating threads, or calling step() with malformed sender
// lists, must abort loudly instead of corrupting the hash-consing
// invariant id(V) == id(W) <=> V = W.
#include <thread>

#include <gtest/gtest.h>

#include "ptg/view_intern.hpp"

namespace topocon {
namespace {

TEST(ViewInternerGuard, StepSenderCountMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ViewInterner interner;
  const ViewId a = interner.base(0, 0);
  // Mask has two senders but only one id is supplied.
  EXPECT_DEATH(interner.step(1, 0b11, {a}), "sender count");
}

TEST(ViewInternerGuard, CrossThreadMutationWithoutAttachDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ViewInterner interner;
        interner.base(0, 0);  // binds the interner to this thread
        std::thread other([&interner] { interner.base(1, 0); });
        other.join();
      },
      "second thread");
}

TEST(ViewInternerGuard, AttachAllowsSequentialHandOff) {
  ViewInterner interner;
  const ViewId before = interner.base(0, 0);
  ViewId after = -1;
  std::thread other([&interner, &after] {
    interner.attach_to_current_thread();
    after = interner.base(0, 0);
  });
  other.join();
  EXPECT_EQ(before, after);
  // Hand the interner back to this thread, too.
  interner.attach_to_current_thread();
  EXPECT_EQ(interner.base(0, 0), before);
}

TEST(ViewInternerGuard, FreshInternerBindsToFirstMutatingThread) {
  // Creating on one thread and mutating on another is fine as long as the
  // creator never mutated: ownership is claimed by the first mutation.
  ViewInterner interner;
  ViewId id = -1;
  std::thread worker([&interner, &id] { id = interner.base(2, 1); });
  worker.join();
  EXPECT_GE(id, 0);
}

#ifndef NDEBUG
TEST(ViewInternerGuard, UnsortedSenderIdsDieInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ViewInterner interner;
  const ViewId p0 = interner.base(0, 0);
  const ViewId p1 = interner.base(1, 0);
  // Senders swapped: process order of {p1, p0} does not match mask 0b11.
  EXPECT_DEATH(interner.step(1, 0b11, {p1, p0}), "process");
}

TEST(ViewInternerGuard, MixedDepthSendersDieInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ViewInterner interner;
  const ViewId p0 = interner.base(0, 0);
  const ViewId p1 = interner.base(1, 0);
  const ViewId deep0 = interner.step(0, 0b01, {p0});
  EXPECT_DEATH(interner.step(1, 0b11, {deep0, p1}), "depth");
}
#endif

}  // namespace
}  // namespace topocon
