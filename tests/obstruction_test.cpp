// Tests for obstruction extraction: bivalence survival series (Section
// 6.1), merged epsilon-chains, and fair-sequence prefixes (Definition
// 5.16) on the touchstone adversaries.
#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "core/metrics.hpp"
#include "core/obstruction.hpp"

namespace topocon {
namespace {

TEST(Bivalence, DiesAtDepthOneForSolvablePair) {
  const auto ma = make_lossy_link(0b011);
  const auto series = bivalence_series(*ma, 4);
  ASSERT_EQ(series.size(), 4u);
  for (const BivalencePoint& point : series) {
    EXPECT_EQ(point.merged_components, 0) << "depth " << point.depth;
  }
}

TEST(Bivalence, SurvivesForeverForFullLossyLink) {
  const auto ma = make_lossy_link(0b111);
  const auto series = bivalence_series(*ma, 6);
  ASSERT_EQ(series.size(), 6u);
  for (const BivalencePoint& point : series) {
    EXPECT_GE(point.merged_components, 1) << "depth " << point.depth;
  }
}

TEST(Bivalence, SurvivesForOmissionNMinusOne) {
  const auto ma = make_omission_adversary(2, 1);
  const auto series = bivalence_series(*ma, 5);
  for (const BivalencePoint& point : series) {
    EXPECT_GE(point.merged_components, 1);
  }
}

TEST(MergedChain, ExistsForFullLossyLinkAndIsValid) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 4;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  const auto chain = find_merged_chain(*ma, analysis, 0, 1);
  ASSERT_TRUE(chain.has_value());
  ASSERT_GE(chain->chain.size(), 2u);
  EXPECT_EQ(chain->witness.size(), chain->chain.size() - 1);
  // Endpoints are valent.
  EXPECT_EQ(uniform_value(chain->chain.front().inputs), 0);
  EXPECT_EQ(uniform_value(chain->chain.back().inputs), 1);
  // Every hop is an epsilon-step: the witnessing process has identical
  // views through the full depth, i.e. d_min < 2^-depth.
  ViewInterner interner;
  for (std::size_t i = 0; i + 1 < chain->chain.size(); ++i) {
    const ProcessId p = chain->witness[i];
    EXPECT_EQ(
        divergence_time(interner, chain->chain[i], chain->chain[i + 1], p),
        kNoDivergence)
        << "hop " << i;
  }
}

TEST(MergedChain, AbsentForSolvablePair) {
  const auto ma = make_lossy_link(0b011);
  AnalysisOptions options;
  options.depth = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  EXPECT_FALSE(find_merged_chain(*ma, analysis, 0, 1).has_value());
}

TEST(FairSequence, ExistsForFullLossyLink) {
  const auto ma = make_lossy_link(0b111);
  for (int depth = 1; depth <= 5; ++depth) {
    const auto prefix = fair_sequence_prefix(*ma, depth);
    ASSERT_TRUE(prefix.has_value()) << "depth " << depth;
    EXPECT_EQ(prefix->length(), depth);
    // The classic forever-bivalent run starts from a mixed input vector.
    EXPECT_EQ(uniform_value(prefix->inputs), -1);
  }
}

TEST(FairSequence, AbsentForSolvableSubsets) {
  for (unsigned mask : {0b001u, 0b010u, 0b011u, 0b100u, 0b101u, 0b110u}) {
    EXPECT_FALSE(fair_sequence_prefix(*make_lossy_link(mask), 3).has_value())
        << mask;
  }
}

}  // namespace
}  // namespace topocon
