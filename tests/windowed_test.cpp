// Tests for the windowed (repetition-constrained) adversary -- the
// library's non-oblivious compact family -- and for the Heard-Of family.
// The headline reproduction: the lossy link is impossible oblivious
// (window 1) but solvable for window >= 2, with decision at round 2.
#include <bit>
#include <random>

#include <gtest/gtest.h>

#include "adversary/heard_of.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/sampler.hpp"
#include "adversary/windowed.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

TEST(Windowed, SafetyAutomatonRejectsPrematureSwitch) {
  const auto ma = make_windowed_lossy_link(2);
  AdvState s = ma->initial_state();
  s = ma->transition(s, 0);
  ASSERT_NE(s, kRejectState);
  // Switching after one round is forbidden for window 2.
  EXPECT_EQ(ma->transition(s, 1), kRejectState);
  // Repeating is allowed; then switching becomes legal.
  s = ma->transition(s, 0);
  ASSERT_NE(s, kRejectState);
  const AdvState switched = ma->transition(s, 2);
  ASSERT_NE(switched, kRejectState);
  // After a switch the age resets: immediate re-switch is forbidden again.
  EXPECT_EQ(ma->transition(switched, 0), kRejectState);
  // Staying beyond the window is always allowed (age caps).
  AdvState stay = s;
  for (int i = 0; i < 5; ++i) {
    stay = ma->transition(stay, 0);
    ASSERT_NE(stay, kRejectState);
  }
}

TEST(Windowed, WindowOneEqualsOblivious) {
  const auto windowed = make_windowed_lossy_link(1);
  // Every letter sequence is admissible.
  EXPECT_EQ(enumerate_letter_sequences(*windowed, 3).size(), 27u);
  SolvabilityOptions options;
  options.max_depth = 5;
  EXPECT_EQ(check_solvability(*windowed, options).verdict,
            SolvabilityVerdict::kNotSeparated);
}

TEST(Windowed, PrefixCountsRespectWindow) {
  const auto ma = make_windowed_lossy_link(2);
  // Depth 1: 3 choices; depth 2: must repeat -> 3; depth 3: repeat or
  // (after 2 equal rounds) switch -> 3 * 3 = 9.
  EXPECT_EQ(enumerate_letter_sequences(*ma, 1).size(), 3u);
  EXPECT_EQ(enumerate_letter_sequences(*ma, 2).size(), 3u);
  EXPECT_EQ(enumerate_letter_sequences(*ma, 3).size(), 9u);
}

TEST(Windowed, SamplesAreAdmissible) {
  std::mt19937_64 rng(6);
  const auto ma = make_windowed_lossy_link(3);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_FALSE(ma->safety_rejects(ma->sample(rng, 32)));
  }
}

// The ablation: window >= 2 rescues the lossy link.
TEST(Windowed, LossyLinkSolvableForWindowTwo) {
  const auto ma = make_windowed_lossy_link(2);
  SolvabilityOptions options;
  options.max_depth = 6;
  const SolvabilityResult result = check_solvability(*ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  EXPECT_EQ(result.certified_depth, 2);

  // Exhaustive T/A/V of the extracted algorithm over admissible runs.
  const UniversalAlgorithm algo(*result.table);
  for (const auto& letters : enumerate_letter_sequences(*ma, 4)) {
    for (const InputVector& inputs : all_input_vectors(2, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(*ma, letters);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      ASSERT_TRUE(check.ok()) << prefix.to_string() << ": " << check.detail;
      EXPECT_LE(outcome.last_decision_round(), 2);
    }
  }
}

TEST(Windowed, LossyLinkSolvableForWindowThree) {
  const auto ma = make_windowed_lossy_link(3);
  SolvabilityOptions options;
  options.max_depth = 6;
  options.build_table = false;
  EXPECT_EQ(check_solvability(*ma, options).verdict,
            SolvabilityVerdict::kSolvable);
}

// ------------------------------------------------------------- heard-of

TEST(HeardOf, AlphabetRespectsInDegreeBound) {
  for (int k = 1; k <= 3; ++k) {
    const auto ma = make_heard_of_adversary(3, k);
    for (int letter = 0; letter < ma->alphabet_size(); ++letter) {
      for (int q = 0; q < 3; ++q) {
        EXPECT_GE(std::popcount(ma->graph(letter).in_mask(q)), k);
      }
    }
  }
}

TEST(HeardOf, FullInDegreeIsCompleteOnly) {
  const auto ma = make_heard_of_adversary(3, 3);
  ASSERT_EQ(ma->alphabet_size(), 1);
  EXPECT_EQ(ma->graph(0), Digraph::complete(3));
  SolvabilityOptions options;
  EXPECT_EQ(check_solvability(*ma, options).verdict,
            SolvabilityVerdict::kSolvable);
}

TEST(HeardOf, N2MinHeard1IsFullLossyLinkPlusEmpty) {
  // in-degree >= 1 is satisfied by all four graphs on two nodes (self-
  // loops always count), so this is the oblivious adversary over all
  // graphs: impossible.
  const auto ma = make_heard_of_adversary(2, 1);
  EXPECT_EQ(ma->alphabet_size(), 4);
  SolvabilityOptions options;
  options.max_depth = 5;
  options.build_table = false;
  EXPECT_EQ(check_solvability(*ma, options).verdict,
            SolvabilityVerdict::kNotSeparated);
}

TEST(HeardOf, N2MinHeard2Trivial) {
  const auto ma = make_heard_of_adversary(2, 2);
  ASSERT_EQ(ma->alphabet_size(), 1);
  EXPECT_EQ(ma->graph(0), Digraph::complete(2));
}

TEST(HeardOf, N3MinHeard2Impossible) {
  // Every receiver may drop one sender per round; dropping the same
  // process everywhere silences it forever.
  const auto ma = make_heard_of_adversary(3, 2);
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 6'000'000;
  options.build_table = false;
  EXPECT_EQ(check_solvability(*ma, options).verdict,
            SolvabilityVerdict::kNotSeparated);
}

}  // namespace
}  // namespace topocon
