// Unit tests for the parallel sweep engine: thread-pool semantics
// (including nesting), exact agreement of the sharded depth analysis with
// the serial one, SweepSpec execution with deterministic result ordering,
// and byte-identical JSON across thread counts.
//
// This suite deliberately keeps exercising the DEPRECATED legacy shims
// (run_sweep, solvability_job, series_job) alongside run_sweep_on: the
// facade (api::Session) is tested in api_session_test; the shims must
// keep working until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/family.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/engine.hpp"
#include "runtime/sweep/json.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"

namespace topocon {
namespace {

using sweep::JobKind;
using sweep::JobOutcome;
using sweep::JsonWriter;
using sweep::SweepSpec;
using sweep::ThreadPool;

// ---- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) {
      EXPECT_EQ(hit.load(), 1);
    }
  }
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(5, [&](std::size_t) {
    pool.parallel_for(7, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 35);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(sweep::resolve_threads(4), 4);
  EXPECT_GE(sweep::resolve_threads(0), 1);
}

// ---- parallel_analyze_depth vs analyze_depth ----------------------------

void expect_analysis_equal(const DepthAnalysis& serial,
                           const DepthAnalysis& parallel) {
  ASSERT_EQ(serial.depth, parallel.depth);
  ASSERT_EQ(serial.truncated, parallel.truncated);
  ASSERT_EQ(serial.levels.size(), parallel.levels.size());
  for (std::size_t s = 0; s < serial.levels.size(); ++s) {
    ASSERT_EQ(serial.levels[s].size(), parallel.levels[s].size())
        << "level " << s;
    for (std::size_t i = 0; i < serial.levels[s].size(); ++i) {
      const PrefixState& a = serial.levels[s][i];
      const PrefixState& b = parallel.levels[s][i];
      EXPECT_EQ(a.inputs, b.inputs) << "level " << s << " state " << i;
      EXPECT_EQ(a.reach, b.reach);
      EXPECT_EQ(a.adv_state, b.adv_state);
      EXPECT_EQ(a.multiplicity, b.multiplicity);
    }
  }
  EXPECT_EQ(serial.first_parent, parallel.first_parent);
  EXPECT_EQ(serial.children, parallel.children);
  EXPECT_EQ(serial.leaf_component, parallel.leaf_component);
  ASSERT_EQ(serial.components.size(), parallel.components.size());
  for (std::size_t c = 0; c < serial.components.size(); ++c) {
    const ComponentInfo& a = serial.components[c];
    const ComponentInfo& b = parallel.components[c];
    EXPECT_EQ(a.num_leaves, b.num_leaves) << "component " << c;
    EXPECT_EQ(a.valence_mask, b.valence_mask);
    EXPECT_EQ(a.common_broadcast, b.common_broadcast);
    EXPECT_EQ(a.broadcasters, b.broadcasters);
    EXPECT_EQ(a.common_input_values, b.common_input_values);
    EXPECT_EQ(a.assigned_value, b.assigned_value);
    EXPECT_EQ(a.assigned_value_strong, b.assigned_value_strong);
  }
  EXPECT_EQ(serial.valence_separated, parallel.valence_separated);
  EXPECT_EQ(serial.merged_components, parallel.merged_components);
  EXPECT_EQ(serial.valent_broadcastable, parallel.valent_broadcastable);
  EXPECT_EQ(serial.strong_assignable, parallel.strong_assignable);
  // Interner ids are a relabeling, but equality structure must agree:
  // two leaves share process p's view serially iff they do in parallel.
  const auto& sl = serial.leaves();
  const auto& pl = parallel.leaves();
  for (std::size_t i = 0; i < sl.size(); ++i) {
    for (std::size_t j = i + 1; j < sl.size() && j < i + 16; ++j) {
      for (std::size_t p = 0; p < sl[i].views.size(); ++p) {
        EXPECT_EQ(sl[i].views[p] == sl[j].views[p],
                  pl[i].views[p] == pl[j].views[p]);
      }
    }
  }
}

TEST(ParallelAnalyze, MatchesSerialOnLossyLink) {
  for (const unsigned mask : {0b011u, 0b101u, 0b111u}) {
    const auto ma = make_lossy_link(mask);
    for (const bool keep_levels : {false, true}) {
      AnalysisOptions options;
      options.depth = 4;
      options.keep_levels = keep_levels;
      const DepthAnalysis serial = analyze_depth(*ma, options);
      for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        expect_analysis_equal(
            serial, sweep::parallel_analyze_depth(*ma, options, pool));
      }
    }
  }
}

TEST(ParallelAnalyze, MatchesSerialOnOmissionN3) {
  const auto ma = make_omission_adversary(3, 1);
  AnalysisOptions options;
  options.depth = 2;
  options.max_states = 6'000'000;
  options.keep_levels = false;
  const DepthAnalysis serial = analyze_depth(*ma, options);
  ThreadPool pool(3);
  expect_analysis_equal(serial,
                        sweep::parallel_analyze_depth(*ma, options, pool));
}

TEST(ParallelAnalyze, TruncationMatchesSerial) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 6;
  options.max_states = 50;  // overflows at some level > 1
  const DepthAnalysis serial = analyze_depth(*ma, options);
  ASSERT_TRUE(serial.truncated);
  for (const int threads : {1, 3}) {
    ThreadPool pool(threads);
    const DepthAnalysis parallel =
        sweep::parallel_analyze_depth(*ma, options, pool);
    EXPECT_TRUE(parallel.truncated);
    EXPECT_EQ(parallel.depth, serial.depth);
    EXPECT_EQ(parallel.leaves().size(), serial.leaves().size());
  }
}

TEST(ParallelCheck, AgreesWithSerialVerdicts) {
  for (const unsigned mask : {0b011u, 0b100u, 0b111u}) {
    const auto ma = make_lossy_link(mask);
    SolvabilityOptions options;
    options.max_depth = 5;
    const SolvabilityResult serial = check_solvability(*ma, options);
    ThreadPool pool(2);
    const SolvabilityResult parallel =
        sweep::parallel_check_solvability(*ma, options, pool);
    EXPECT_EQ(parallel.verdict, serial.verdict);
    EXPECT_EQ(parallel.certified_depth, serial.certified_depth);
    EXPECT_EQ(parallel.per_depth.size(), serial.per_depth.size());
    for (std::size_t d = 0; d < serial.per_depth.size(); ++d) {
      EXPECT_EQ(parallel.per_depth[d].num_leaf_classes,
                serial.per_depth[d].num_leaf_classes);
      EXPECT_EQ(parallel.per_depth[d].num_components,
                serial.per_depth[d].num_components);
      EXPECT_EQ(parallel.per_depth[d].interner_views,
                serial.per_depth[d].interner_views);
    }
    EXPECT_EQ(parallel.table.has_value(), serial.table.has_value());
    if (serial.table.has_value()) {
      EXPECT_EQ(parallel.table->size(), serial.table->size());
      EXPECT_EQ(parallel.table->worst_case_decision_round(),
                serial.table->worst_case_decision_round());
    }
  }
}

// ---- SweepSpec / run_sweep ----------------------------------------------

SweepSpec small_spec(int threads) {
  SweepSpec spec;
  spec.name = "unit";
  spec.num_threads = threads;
  spec.record = false;
  SolvabilityOptions options;
  options.max_depth = 5;
  for (const int mask : {1, 2, 3, 5, 7}) {
    spec.jobs.push_back(
        sweep::solvability_job({"lossy_link", 2, mask}, options));
  }
  AnalysisOptions series;
  series.depth = 4;
  spec.jobs.push_back(sweep::series_job({"lossy_link", 2, 7}, series));
  return spec;
}

std::string spec_json(const std::vector<JobOutcome>& outcomes) {
  std::ostringstream out;
  JsonWriter writer(out);
  sweep::write_sweep_json(writer, "unit", outcomes);
  return out.str();
}

TEST(RunSweep, DeterministicOrderingAndJsonAcrossThreadCounts) {
  const std::vector<JobOutcome> base = sweep::run_sweep(small_spec(1));
  ASSERT_EQ(base.size(), 6u);
  EXPECT_EQ(base[0].label, "{<-}");
  EXPECT_EQ(base[5].kind, JobKind::kDepthSeries);
  const std::string base_json = spec_json(base);
  for (const int threads : {2, int(std::thread::hardware_concurrency())}) {
    const std::vector<JobOutcome> outcomes =
        sweep::run_sweep(small_spec(std::max(threads, 1)));
    EXPECT_EQ(spec_json(outcomes), base_json)
        << "JSON differs at " << threads << " threads";
  }
}

TEST(RunSweep, OnJobDoneHookSeesEveryJobExactlyOnceWithFinalAggregates) {
  for (const int threads : {1, 4}) {
    SweepSpec spec = small_spec(threads);
    std::vector<int> calls(spec.jobs.size(), 0);
    std::vector<sweep::JobRecord> from_hook(spec.jobs.size());
    spec.on_job_done = [&](std::size_t j, const JobOutcome& outcome) {
      // Serialized by the engine's internal mutex; j indexes spec.jobs.
      ++calls[j];
      from_hook[j] = sweep::summarize(outcome);
    };
    const std::vector<JobOutcome> outcomes = sweep::run_sweep(spec);
    ASSERT_EQ(outcomes.size(), from_hook.size());
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      EXPECT_EQ(calls[j], 1) << "job " << j << " at " << threads;
      EXPECT_EQ(from_hook[j], sweep::summarize(outcomes[j]))
          << "job " << j << " at " << threads;
    }
  }
}

TEST(RunSweep, SeriesContinuesPastSeparation) {
  SweepSpec spec;
  spec.name = "series";
  spec.record = false;
  spec.num_threads = 2;
  AnalysisOptions series;
  series.depth = 3;
  spec.jobs.push_back(sweep::series_job({"lossy_link", 2, 0b011}, series));
  const auto outcomes = sweep::run_sweep(spec);
  ASSERT_EQ(outcomes.size(), 1u);
  // The solvable pair separates at depth 1 but the series keeps going.
  ASSERT_EQ(outcomes[0].series.size(), 3u);
  EXPECT_TRUE(outcomes[0].series[0].separated);
  EXPECT_TRUE(outcomes[0].series[2].separated);
}

TEST(RunSweep, RegistryDisabledByDefaultAndRecordsInRunOrderWhenEnabled) {
  sweep::SweepRegistry::instance().clear();
  sweep::SweepRegistry::instance().set_enabled(false);
  SweepSpec disabled_spec = small_spec(2);
  disabled_spec.record = true;
  disabled_spec.jobs.resize(1);
  sweep::run_sweep(disabled_spec);
  EXPECT_TRUE(sweep::SweepRegistry::instance().empty())
      << "registry retained outcomes while disabled";

  sweep::SweepRegistry::instance().set_enabled(true);
  SweepSpec spec = small_spec(2);
  spec.record = true;
  spec.name = "first";
  spec.jobs.resize(2);
  sweep::run_sweep(spec);
  spec.name = "second";
  sweep::run_sweep(spec);
  std::ostringstream out;
  sweep::SweepRegistry::instance().write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("topocon-sweep-v1"), std::string::npos);
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
  sweep::SweepRegistry::instance().clear();
  sweep::SweepRegistry::instance().set_enabled(false);
}

TEST(FamilyAdapters, BuildAndLabelEveryFamily) {
  EXPECT_EQ(family_point_label({"lossy_link", 2, 0b011}), "{<-, ->}");
  EXPECT_EQ(family_point_label({"omission", 3, 1}), "n=3 f=1");
  EXPECT_EQ(family_point_label({"heard_of", 2, 2}), "n=2 k=2");
  EXPECT_EQ(family_point_label({"windowed_lossy_link", 2, 3}), "w=3");
  EXPECT_EQ(family_point_label({"vssc", 2, 4}), "n=2 stability=4");
  EXPECT_EQ(make_family_adversary({"omission", 3, 1})->num_processes(), 3);
  EXPECT_FALSE(make_family_adversary({"vssc", 2, 2})->is_compact());
  EXPECT_THROW(make_family_adversary({"nope", 2, 0}), std::invalid_argument);
  EXPECT_THROW(make_family_adversary({"lossy_link", 3, 1}),
               std::invalid_argument);
}

TEST(JsonWriterTest, EscapesAndNests) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("a\"b\\c\n", 1);
  writer.key("list");
  writer.begin_array();
  writer.value("x");
  writer.value(true);
  writer.value(-7);
  writer.end_array();
  writer.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"a\\\"b\\\\c\\n\": 1,\n  \"list\": [\n    \"x\",\n"
            "    true,\n    -7\n  ]\n}");
}

// ---- run_sweep_on (the Session execution path) --------------------------

TEST(RunSweepOn, MatchesRunSweepAndStreamsHooksInOrder) {
  const std::vector<JobOutcome> legacy = sweep::run_sweep(small_spec(2));
  SweepSpec spec = small_spec(2);
  ThreadPool pool(2);
  std::vector<int> starts(spec.jobs.size(), 0);
  std::vector<std::vector<int>> depths(spec.jobs.size());
  std::vector<int> dones(spec.jobs.size(), 0);
  sweep::SweepHooks hooks;
  hooks.on_job_start = [&](std::size_t j, const sweep::SweepJob&) {
    ++starts[j];
  };
  hooks.on_depth = [&](std::size_t j, const DepthStats& stats) {
    depths[j].push_back(stats.depth);
  };
  hooks.on_job_done = [&](std::size_t j, const JobOutcome&) { ++dones[j]; };
  const std::vector<JobOutcome> outcomes =
      sweep::run_sweep_on(spec, pool, hooks);
  ASSERT_EQ(outcomes.size(), legacy.size());
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    EXPECT_EQ(sweep::summarize(outcomes[j]), sweep::summarize(legacy[j]));
    EXPECT_EQ(starts[j], 1) << "job " << j;
    EXPECT_EQ(dones[j], 1) << "job " << j;
    // One on_depth per completed depth, in depth order.
    const std::vector<DepthStats>& stats =
        outcomes[j].kind == JobKind::kDepthSeries
            ? outcomes[j].series
            : outcomes[j].result.per_depth;
    ASSERT_EQ(depths[j].size(), stats.size()) << "job " << j;
    for (std::size_t d = 0; d < stats.size(); ++d) {
      EXPECT_EQ(depths[j][d], stats[d].depth);
    }
  }
}

TEST(RunSweepOn, DecisionTableJobExtractsRoundProfile) {
  SweepSpec spec;
  spec.name = "extract";
  sweep::SweepJob job;
  job.point = {"lossy_link", 2, 0b011};
  job.kind = sweep::JobKind::kDecisionTable;
  job.solve.max_depth = 5;
  job.solve.build_table = false;  // forced on by the engine for this kind
  spec.jobs.push_back(job);
  ThreadPool pool(2);
  const std::vector<JobOutcome> outcomes = sweep::run_sweep_on(spec, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].result.table.has_value());
  const sweep::JobRecord record = sweep::summarize(outcomes[0]);
  ASSERT_TRUE(record.table.has_value());
  std::uint64_t total = 0;
  for (const std::uint64_t entries : record.round_entries) {
    total += entries;
  }
  EXPECT_EQ(total, record.table->entries);
  EXPECT_EQ(record.per_depth.size(), 0u)
      << "extraction records carry the table shape, not search stats";
}

}  // namespace
}  // namespace topocon
#pragma GCC diagnostic pop
