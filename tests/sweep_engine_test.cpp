// Unit tests for the parallel sweep engine: thread-pool semantics
// (including nesting), exact agreement of the chunk-sharded depth
// analysis with the serial one (at several forced chunk sizes),
// SweepSpec execution with deterministic result ordering, and
// byte-identical JSON across thread counts.
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/family.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/engine.hpp"
#include "runtime/sweep/json.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"

namespace topocon {
namespace {

using sweep::JobKind;
using sweep::JobOutcome;
using sweep::JsonWriter;
using sweep::ShardingOptions;
using sweep::SweepSpec;
using sweep::ThreadPool;

// ---- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) {
      EXPECT_EQ(hit.load(), 1);
    }
  }
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(5, [&](std::size_t) {
    pool.parallel_for(7, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 35);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(sweep::resolve_threads(4), 4);
  EXPECT_GE(sweep::resolve_threads(0), 1);
}

// ---- parallel_analyze_depth vs analyze_depth ----------------------------

void expect_analysis_equal(const DepthAnalysis& serial,
                           const DepthAnalysis& parallel) {
  ASSERT_EQ(serial.depth, parallel.depth);
  ASSERT_EQ(serial.truncated, parallel.truncated);
  ASSERT_EQ(serial.levels.size(), parallel.levels.size());
  for (std::size_t s = 0; s < serial.levels.size(); ++s) {
    ASSERT_EQ(serial.levels[s].size(), parallel.levels[s].size())
        << "level " << s;
    for (std::size_t i = 0; i < serial.levels[s].size(); ++i) {
      const PrefixState& a = serial.levels[s][i];
      const PrefixState& b = parallel.levels[s][i];
      EXPECT_EQ(a.inputs, b.inputs) << "level " << s << " state " << i;
      EXPECT_EQ(a.reach, b.reach);
      EXPECT_EQ(a.adv_state, b.adv_state);
      EXPECT_EQ(a.multiplicity, b.multiplicity);
    }
  }
  EXPECT_EQ(serial.first_parent, parallel.first_parent);
  EXPECT_EQ(serial.children, parallel.children);
  EXPECT_EQ(serial.leaf_component, parallel.leaf_component);
  ASSERT_EQ(serial.components.size(), parallel.components.size());
  for (std::size_t c = 0; c < serial.components.size(); ++c) {
    const ComponentInfo& a = serial.components[c];
    const ComponentInfo& b = parallel.components[c];
    EXPECT_EQ(a.num_leaves, b.num_leaves) << "component " << c;
    EXPECT_EQ(a.valence_mask, b.valence_mask);
    EXPECT_EQ(a.common_broadcast, b.common_broadcast);
    EXPECT_EQ(a.broadcasters, b.broadcasters);
    EXPECT_EQ(a.common_input_values, b.common_input_values);
    EXPECT_EQ(a.assigned_value, b.assigned_value);
    EXPECT_EQ(a.assigned_value_strong, b.assigned_value_strong);
  }
  EXPECT_EQ(serial.valence_separated, parallel.valence_separated);
  EXPECT_EQ(serial.merged_components, parallel.merged_components);
  EXPECT_EQ(serial.valent_broadcastable, parallel.valent_broadcastable);
  EXPECT_EQ(serial.strong_assignable, parallel.strong_assignable);
  // Interner ids are a relabeling, but equality structure must agree:
  // two leaves share process p's view serially iff they do in parallel.
  const auto& sl = serial.leaves();
  const auto& pl = parallel.leaves();
  for (std::size_t i = 0; i < sl.size(); ++i) {
    for (std::size_t j = i + 1; j < sl.size() && j < i + 16; ++j) {
      for (std::size_t p = 0; p < sl[i].views.size(); ++p) {
        EXPECT_EQ(sl[i].views[p] == sl[j].views[p],
                  pl[i].views[p] == pl[j].views[p]);
      }
    }
  }
}

TEST(ParallelAnalyze, MatchesSerialOnLossyLink) {
  for (const unsigned mask : {0b011u, 0b101u, 0b111u}) {
    const auto ma = make_lossy_link(mask);
    for (const bool keep_levels : {false, true}) {
      AnalysisOptions options;
      options.depth = 4;
      options.keep_levels = keep_levels;
      const DepthAnalysis serial = analyze_depth(*ma, options);
      for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        expect_analysis_equal(
            serial, sweep::parallel_analyze_depth(*ma, options, pool));
      }
    }
  }
}

TEST(ParallelAnalyze, MatchesSerialAtEveryChunkSize) {
  // Sub-root sharding forced down to one-state chunks must reproduce the
  // serial analysis exactly -- including tree links and multiplicities.
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 4;
  options.keep_levels = true;
  const DepthAnalysis serial = analyze_depth(*ma, options);
  for (const std::size_t chunk_states : {std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{64}}) {
    for (const int threads : {1, 3}) {
      ThreadPool pool(threads);
      ShardingOptions sharding;
      sharding.chunk_states = chunk_states;
      expect_analysis_equal(serial,
                            sweep::parallel_analyze_depth(
                                *ma, options, pool, nullptr, sharding));
    }
  }
}

TEST(ParallelAnalyze, MatchesSerialOnOmissionN3) {
  const auto ma = make_omission_adversary(3, 1);
  AnalysisOptions options;
  options.depth = 2;
  options.max_states = 6'000'000;
  options.keep_levels = false;
  const DepthAnalysis serial = analyze_depth(*ma, options);
  ThreadPool pool(3);
  expect_analysis_equal(serial,
                        sweep::parallel_analyze_depth(*ma, options, pool));
  ShardingOptions fine;
  fine.chunk_states = 1;
  expect_analysis_equal(serial, sweep::parallel_analyze_depth(
                                    *ma, options, pool, nullptr, fine));
}

TEST(ParallelAnalyze, TruncationMatchesSerial) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 6;
  options.max_states = 50;  // overflows at some level > 1
  const DepthAnalysis serial = analyze_depth(*ma, options);
  ASSERT_TRUE(serial.truncated);
  for (const std::size_t chunk_states : {std::size_t{0}, std::size_t{1}}) {
    for (const int threads : {1, 3}) {
      ThreadPool pool(threads);
      ShardingOptions sharding;
      sharding.chunk_states = chunk_states;
      const DepthAnalysis parallel = sweep::parallel_analyze_depth(
          *ma, options, pool, nullptr, sharding);
      EXPECT_TRUE(parallel.truncated);
      EXPECT_EQ(parallel.depth, serial.depth);
      EXPECT_EQ(parallel.leaves().size(), serial.leaves().size());
    }
  }
}

TEST(ParallelAnalyze, ChunkProgressCountsEveryChunkOfEveryLevel) {
  const auto ma = make_omission_adversary(2, 1);
  AnalysisOptions options;
  options.depth = 3;
  ThreadPool pool(2);
  ShardingOptions sharding;
  sharding.chunk_states = 4;  // force sub-root splitting on a skewed level
  std::vector<ChunkProgress> events;
  sharding.on_chunk = [&](const ChunkProgress& progress) {
    events.push_back(progress);
  };
  const DepthAnalysis analysis =
      sweep::parallel_analyze_depth(*ma, options, pool, nullptr, sharding);
  const DepthAnalysis serial = analyze_depth(*ma, options);
  expect_analysis_equal(serial, analysis);

  // Per level: chunks_done runs 1..chunks_total, and at least one level
  // of this skewed workload splits a root into several chunks (more
  // chunks than the 4 input-vector roots).
  bool split_below_root = false;
  std::size_t seen_for_level = 0;
  int level = 0;
  for (const ChunkProgress& event : events) {
    EXPECT_EQ(event.depth, 3);
    if (event.level != level) {
      EXPECT_EQ(seen_for_level, 0u) << "level change mid-count";
      level = event.level;
    }
    ++seen_for_level;
    EXPECT_EQ(event.chunks_done, seen_for_level);
    EXPECT_GT(event.chunks_total, 0u);
    if (event.chunks_done == event.chunks_total) seen_for_level = 0;
    if (event.chunks_total > 4u) split_below_root = true;
  }
  EXPECT_EQ(seen_for_level, 0u) << "last level's chunk count incomplete";
  EXPECT_TRUE(split_below_root)
      << "chunk_states=4 never split a root; workload not skewed enough";
}

TEST(ParallelCheck, AgreesWithSerialVerdicts) {
  for (const unsigned mask : {0b011u, 0b100u, 0b111u}) {
    const auto ma = make_lossy_link(mask);
    SolvabilityOptions options;
    options.max_depth = 5;
    const SolvabilityResult serial = check_solvability(*ma, options);
    ThreadPool pool(2);
    const SolvabilityResult parallel =
        sweep::parallel_check_solvability(*ma, options, pool);
    EXPECT_EQ(parallel.verdict, serial.verdict);
    EXPECT_EQ(parallel.certified_depth, serial.certified_depth);
    EXPECT_EQ(parallel.per_depth.size(), serial.per_depth.size());
    for (std::size_t d = 0; d < serial.per_depth.size(); ++d) {
      EXPECT_EQ(parallel.per_depth[d].num_leaf_classes,
                serial.per_depth[d].num_leaf_classes);
      EXPECT_EQ(parallel.per_depth[d].num_components,
                serial.per_depth[d].num_components);
      EXPECT_EQ(parallel.per_depth[d].interner_views,
                serial.per_depth[d].interner_views);
    }
    EXPECT_EQ(parallel.table.has_value(), serial.table.has_value());
    if (serial.table.has_value()) {
      EXPECT_EQ(parallel.table->size(), serial.table->size());
      EXPECT_EQ(parallel.table->worst_case_decision_round(),
                serial.table->worst_case_decision_round());
    }
  }
}

TEST(ParallelCheck, ChunkedVerdictAndStatsMatchUnchunked) {
  const auto ma = make_lossy_link(0b011);
  SolvabilityOptions options;
  options.max_depth = 5;
  ThreadPool pool(2);
  const SolvabilityResult base =
      sweep::parallel_check_solvability(*ma, options, pool);
  ShardingOptions fine;
  fine.chunk_states = 1;
  const SolvabilityResult chunked =
      sweep::parallel_check_solvability(*ma, options, pool, {}, fine);
  EXPECT_EQ(chunked.verdict, base.verdict);
  EXPECT_EQ(chunked.certified_depth, base.certified_depth);
  ASSERT_EQ(chunked.per_depth.size(), base.per_depth.size());
  for (std::size_t d = 0; d < base.per_depth.size(); ++d) {
    EXPECT_EQ(chunked.per_depth[d], base.per_depth[d]) << "depth " << d + 1;
  }
  ASSERT_TRUE(chunked.table.has_value());
  EXPECT_EQ(chunked.table->size(), base.table->size());
}

// ---- SweepSpec / run_sweep_on -------------------------------------------

sweep::SweepJob make_solvability_job(const FamilyPoint& point,
                                     const SolvabilityOptions& options) {
  sweep::SweepJob job;
  job.point = point;
  job.kind = JobKind::kSolvability;
  job.solve = options;
  return job;
}

sweep::SweepJob make_series_job(const FamilyPoint& point,
                                const AnalysisOptions& options) {
  sweep::SweepJob job;
  job.point = point;
  job.kind = JobKind::kDepthSeries;
  job.analysis = options;
  return job;
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "unit";
  SolvabilityOptions options;
  options.max_depth = 5;
  for (const int mask : {1, 2, 3, 5, 7}) {
    spec.jobs.push_back(
        make_solvability_job({"lossy_link", 2, mask}, options));
  }
  AnalysisOptions series;
  series.depth = 4;
  spec.jobs.push_back(make_series_job({"lossy_link", 2, 7}, series));
  return spec;
}

std::string spec_json(const std::vector<JobOutcome>& outcomes) {
  std::ostringstream out;
  JsonWriter writer(out);
  sweep::write_sweep_json(writer, "unit", outcomes);
  return out.str();
}

std::vector<JobOutcome> run_small_spec(int threads) {
  ThreadPool pool(threads);
  return sweep::run_sweep_on(small_spec(), pool);
}

TEST(RunSweepOn, DeterministicOrderingAndJsonAcrossThreadCounts) {
  const std::vector<JobOutcome> base = run_small_spec(1);
  ASSERT_EQ(base.size(), 6u);
  EXPECT_EQ(base[0].label, "{<-}");
  EXPECT_EQ(base[5].kind, JobKind::kDepthSeries);
  const std::string base_json = spec_json(base);
  for (const int threads : {2, int(std::thread::hardware_concurrency())}) {
    const std::vector<JobOutcome> outcomes =
        run_small_spec(std::max(threads, 1));
    EXPECT_EQ(spec_json(outcomes), base_json)
        << "JSON differs at " << threads << " threads";
  }
}

TEST(RunSweepOn, JsonIdenticalUnderFinestChunking) {
  const std::string base_json = spec_json(run_small_spec(2));
  sweep::set_default_chunk_states(1);
  const std::string chunked_json = spec_json(run_small_spec(2));
  sweep::set_default_chunk_states(0);
  EXPECT_EQ(chunked_json, base_json);
}

TEST(RunSweepOn, OnJobDoneHookSeesEveryJobExactlyOnceWithFinalAggregates) {
  for (const int threads : {1, 4}) {
    SweepSpec spec = small_spec();
    std::vector<int> calls(spec.jobs.size(), 0);
    std::vector<sweep::JobRecord> from_hook(spec.jobs.size());
    spec.on_job_done = [&](std::size_t j, const JobOutcome& outcome) {
      // Serialized by the engine's internal mutex; j indexes spec.jobs.
      ++calls[j];
      from_hook[j] = sweep::summarize(outcome);
    };
    ThreadPool pool(threads);
    const std::vector<JobOutcome> outcomes =
        sweep::run_sweep_on(spec, pool);
    ASSERT_EQ(outcomes.size(), from_hook.size());
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      EXPECT_EQ(calls[j], 1) << "job " << j << " at " << threads;
      EXPECT_EQ(from_hook[j], sweep::summarize(outcomes[j]))
          << "job " << j << " at " << threads;
    }
  }
}

TEST(RunSweepOn, SeriesContinuesPastSeparation) {
  SweepSpec spec;
  spec.name = "series";
  AnalysisOptions series;
  series.depth = 3;
  spec.jobs.push_back(make_series_job({"lossy_link", 2, 0b011}, series));
  ThreadPool pool(2);
  const auto outcomes = sweep::run_sweep_on(spec, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  // The solvable pair separates at depth 1 but the series keeps going.
  ASSERT_EQ(outcomes[0].series.size(), 3u);
  EXPECT_TRUE(outcomes[0].series[0].separated);
  EXPECT_TRUE(outcomes[0].series[2].separated);
}

TEST(SweepRegistry, DisabledByDefaultAndRecordsInRunOrderWhenEnabled) {
  sweep::SweepRegistry::instance().clear();
  sweep::SweepRegistry::instance().set_enabled(false);
  ThreadPool pool(2);
  SweepSpec disabled_spec = small_spec();
  disabled_spec.jobs.resize(1);
  sweep::SweepRegistry::instance().record(
      disabled_spec.name, sweep::run_sweep_on(disabled_spec, pool));
  EXPECT_TRUE(sweep::SweepRegistry::instance().empty())
      << "registry retained outcomes while disabled";

  sweep::SweepRegistry::instance().set_enabled(true);
  SweepSpec spec = small_spec();
  spec.jobs.resize(2);
  const std::vector<JobOutcome> outcomes = sweep::run_sweep_on(spec, pool);
  sweep::SweepRegistry::instance().record("first", outcomes);
  sweep::SweepRegistry::instance().record("second", outcomes);
  std::ostringstream out;
  sweep::SweepRegistry::instance().write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("topocon-sweep-v1"), std::string::npos);
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
  sweep::SweepRegistry::instance().clear();
  sweep::SweepRegistry::instance().set_enabled(false);
}

TEST(FamilyAdapters, BuildAndLabelEveryFamily) {
  EXPECT_EQ(family_point_label({"lossy_link", 2, 0b011}), "{<-, ->}");
  EXPECT_EQ(family_point_label({"omission", 3, 1}), "n=3 f=1");
  EXPECT_EQ(family_point_label({"heard_of", 2, 2}), "n=2 k=2");
  EXPECT_EQ(family_point_label({"windowed_lossy_link", 2, 3}), "w=3");
  EXPECT_EQ(family_point_label({"vssc", 2, 4}), "n=2 stability=4");
  EXPECT_EQ(make_family_adversary({"omission", 3, 1})->num_processes(), 3);
  EXPECT_FALSE(make_family_adversary({"vssc", 2, 2})->is_compact());
  EXPECT_THROW(make_family_adversary({"nope", 2, 0}), std::invalid_argument);
  EXPECT_THROW(make_family_adversary({"lossy_link", 3, 1}),
               std::invalid_argument);
}

TEST(JsonWriterTest, EscapesAndNests) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("a\"b\\c\n", 1);
  writer.key("list");
  writer.begin_array();
  writer.value("x");
  writer.value(true);
  writer.value(-7);
  writer.end_array();
  writer.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"a\\\"b\\\\c\\n\": 1,\n  \"list\": [\n    \"x\",\n"
            "    true,\n    -7\n  ]\n}");
}

// ---- run_sweep_on hooks -------------------------------------------------

TEST(RunSweepOn, StreamsHooksInOrder) {
  SweepSpec spec = small_spec();
  ThreadPool pool(2);
  std::vector<int> starts(spec.jobs.size(), 0);
  std::vector<std::vector<int>> depths(spec.jobs.size());
  std::vector<int> chunks(spec.jobs.size(), 0);
  std::vector<int> dones(spec.jobs.size(), 0);
  sweep::SweepHooks hooks;
  hooks.on_job_start = [&](std::size_t j, const sweep::SweepJob&) {
    ++starts[j];
  };
  hooks.on_depth = [&](std::size_t j, const DepthStats& stats) {
    depths[j].push_back(stats.depth);
  };
  hooks.on_chunk = [&](std::size_t j, const ChunkProgress& progress) {
    EXPECT_GT(progress.chunks_total, 0u);
    ++chunks[j];
  };
  hooks.on_job_done = [&](std::size_t j, const JobOutcome&) { ++dones[j]; };
  const std::vector<JobOutcome> outcomes =
      sweep::run_sweep_on(spec, pool, hooks);
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    EXPECT_EQ(starts[j], 1) << "job " << j;
    EXPECT_EQ(dones[j], 1) << "job " << j;
    EXPECT_GT(chunks[j], 0) << "job " << j << " streamed no chunk events";
    // One on_depth per completed depth, in depth order.
    const std::vector<DepthStats>& stats =
        outcomes[j].kind == JobKind::kDepthSeries
            ? outcomes[j].series
            : outcomes[j].result.per_depth;
    ASSERT_EQ(depths[j].size(), stats.size()) << "job " << j;
    for (std::size_t d = 0; d < stats.size(); ++d) {
      EXPECT_EQ(depths[j][d], stats[d].depth);
    }
  }
}

TEST(RunSweepOn, DecisionTableJobExtractsRoundProfile) {
  SweepSpec spec;
  spec.name = "extract";
  sweep::SweepJob job;
  job.point = {"lossy_link", 2, 0b011};
  job.kind = sweep::JobKind::kDecisionTable;
  job.solve.max_depth = 5;
  job.solve.build_table = false;  // forced on by the engine for this kind
  spec.jobs.push_back(job);
  ThreadPool pool(2);
  const std::vector<JobOutcome> outcomes = sweep::run_sweep_on(spec, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].result.table.has_value());
  const sweep::JobRecord record = sweep::summarize(outcomes[0]);
  ASSERT_TRUE(record.table.has_value());
  std::uint64_t total = 0;
  for (const std::uint64_t entries : record.round_entries) {
    total += entries;
  }
  EXPECT_EQ(total, record.table->entries);
  EXPECT_EQ(record.per_depth.size(), 0u)
      << "extraction records carry the table shape, not search stats";
}

}  // namespace
}  // namespace topocon
