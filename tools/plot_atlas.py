#!/usr/bin/env python3
"""Render the solvability atlas CSV as a standalone SVG.

Reads the per-depth CSV that ``topocon run atlas --format=csv`` emits
(committed as ``tests/golden/atlas.csv``) and draws one swim lane per
family: a colored cell per grid point showing the final verdict and the
depth the run certified or gave up at. Pure standard library, so CI can
archive the picture without installing anything.

Usage:
    tools/plot_atlas.py [--csv tests/golden/atlas.csv] [--out atlas.svg]
"""

import argparse
import csv
import html
import sys
from collections import OrderedDict

VERDICT_COLORS = {
    "SOLVABLE": "#4caf50",
    "NOT-SEPARATED": "#e05252",
    "NOT-BROADCASTABLE": "#b76fc4",
    "RESOURCE-LIMIT": "#e8a33d",
}
FALLBACK_COLOR = "#9e9e9e"

CELL_W = 58
CELL_H = 44
LANE_GAP = 18
MARGIN_LEFT = 170
MARGIN_TOP = 64
LEGEND_H = 40


def load_points(path):
    """Collapses the per-depth rows onto one final row per (job, label)."""
    points = OrderedDict()
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            key = (row["sweep"], row["job"])
            # Rows arrive depth-ascending; the last one carries the verdict.
            points[key] = row
    if not points:
        raise SystemExit(f"plot_atlas: no rows in {path}")
    return list(points.values())


def group_by_family(points):
    lanes = OrderedDict()
    for row in points:
        lanes.setdefault(row["family"], []).append(row)
    return lanes


def cell_caption(row):
    if row["verdict"] == "SOLVABLE" and row["certified_depth"]:
        return f"d={row['certified_depth']}"
    return f"d≤{row['depth']}"


def render_svg(lanes, title):
    width = MARGIN_LEFT + CELL_W * max(len(rows) for rows in lanes.values()) + 24
    height = (
        MARGIN_TOP
        + sum(CELL_H + LANE_GAP for _ in lanes)
        + LEGEND_H
    )
    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">'
    )
    out.append(f'<rect width="{width}" height="{height}" fill="#ffffff"/>')
    out.append(
        f'<text x="{MARGIN_LEFT}" y="24" font-size="15" font-weight="bold">'
        f"{html.escape(title)}</text>"
    )
    out.append(
        f'<text x="{MARGIN_LEFT}" y="42" fill="#555555">one cell per grid '
        "point; d = certified depth (SOLVABLE) or deepest level tried</text>"
    )

    y = MARGIN_TOP
    for family, rows in lanes.items():
        out.append(
            f'<text x="12" y="{y + CELL_H / 2 + 4}" font-weight="bold">'
            f"{html.escape(family)}</text>"
        )
        for index, row in enumerate(rows):
            x = MARGIN_LEFT + index * CELL_W
            color = VERDICT_COLORS.get(row["verdict"], FALLBACK_COLOR)
            out.append(
                f'<rect x="{x}" y="{y}" width="{CELL_W - 4}" '
                f'height="{CELL_H - 4}" rx="4" fill="{color}" '
                'stroke="#333333" stroke-width="0.6">'
                f"<title>{html.escape(row['label'])} (n={row['n']}): "
                f"{html.escape(row['verdict'])}</title></rect>"
            )
            label = row["label"] if len(row["label"]) <= 8 else row["label"][:7] + "…"
            out.append(
                f'<text x="{x + (CELL_W - 4) / 2}" y="{y + 17}" '
                'text-anchor="middle" fill="#ffffff">'
                f"{html.escape(label)}</text>"
            )
            out.append(
                f'<text x="{x + (CELL_W - 4) / 2}" y="{y + 33}" '
                'text-anchor="middle" fill="#ffffff">'
                f"{html.escape(cell_caption(row))}</text>"
            )
        y += CELL_H + LANE_GAP

    x = MARGIN_LEFT
    for verdict, color in VERDICT_COLORS.items():
        out.append(
            f'<rect x="{x}" y="{y + 6}" width="14" height="14" rx="3" '
            f'fill="{color}"/>'
        )
        out.append(f'<text x="{x + 20}" y="{y + 17}">{verdict}</text>')
        x += 24 + 9 * len(verdict)
    out.append("</svg>")
    return "\n".join(out) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--csv", default="tests/golden/atlas.csv")
    parser.add_argument("--out", default="atlas.svg")
    parser.add_argument("--title", default="topocon solvability atlas")
    args = parser.parse_args(argv)

    lanes = group_by_family(load_points(args.csv))
    svg = render_svg(lanes, args.title)
    with open(args.out, "w") as handle:
        handle.write(svg)
    total = sum(len(rows) for rows in lanes.values())
    print(f"plot_atlas: {total} grid points across {len(lanes)} families "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
