# Checkpoint/resume byte-identity smoke test, run via `cmake -P`.
#
# Inputs (all -D):
#   TOPOCON_CLI  path to the topocon binary
#   SCENARIO     scenario name to run
#   RUN_FLAGS    extra flags for `run` (semicolon-separated list; may be
#                empty)
#   FAIL_AFTER   checkpoint appends before the simulated crash
#   WORK_DIR     scratch directory (recreated)
#
# Protocol: an uninterrupted single-threaded run, an uninterrupted
# 4-thread run, and an interrupted-then-resumed 4-thread run must all
# produce byte-identical finalized JSON.

foreach(var TOPOCON_CLI SCENARIO FAIL_AFTER WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_code)
  execute_process(
    COMMAND ${TOPOCON_CLI} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR
      "topocon ${ARGN} exited ${code} (expected ${expect_code}):\n${output}")
  endif()
endfunction()

run_cli(0 run ${SCENARIO} ${RUN_FLAGS} --threads=1
  --json=${WORK_DIR}/serial.json)
run_cli(0 run ${SCENARIO} ${RUN_FLAGS} --threads=4
  --json=${WORK_DIR}/parallel.json)
run_cli(3 run ${SCENARIO} ${RUN_FLAGS} --threads=4
  --json=${WORK_DIR}/resumed.json --fail-after=${FAIL_AFTER})
# Tear the checkpoint's trailing line (what a real SIGKILL mid-append
# leaves), interrupt the resume once more, then finish: the final
# document must still be byte-identical.
file(READ ${WORK_DIR}/resumed.json ckpt)
string(LENGTH "${ckpt}" ckpt_len)
math(EXPR torn_len "${ckpt_len} - 10")
string(SUBSTRING "${ckpt}" 0 ${torn_len} ckpt)
file(WRITE ${WORK_DIR}/resumed.json "${ckpt}")
run_cli(3 resume ${WORK_DIR}/resumed.json --threads=2 --fail-after=1)
run_cli(0 resume ${WORK_DIR}/resumed.json --threads=4)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/serial.json ${WORK_DIR}/parallel.json
  RESULT_VARIABLE diff_parallel)
if(NOT diff_parallel EQUAL 0)
  message(FATAL_ERROR "1-thread and 4-thread JSON differ")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/serial.json ${WORK_DIR}/resumed.json
  RESULT_VARIABLE diff_resumed)
if(NOT diff_resumed EQUAL 0)
  message(FATAL_ERROR "uninterrupted and interrupted-resumed JSON differ")
endif()

# Resuming the finalized document must be a no-op that keeps it intact.
run_cli(0 resume ${WORK_DIR}/resumed.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/serial.json ${WORK_DIR}/resumed.json
  RESULT_VARIABLE diff_noop)
if(NOT diff_noop EQUAL 0)
  message(FATAL_ERROR "resume of a finalized document modified it")
endif()

message(STATUS "resume smoke OK: ${SCENARIO}")
