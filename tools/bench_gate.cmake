# Bench regression gate smoke, run via `cmake -P`: one cheap benchmark
# run must PASS the gate against the committed baseline and FAIL it
# against an injected absurdly-tight baseline — proving the gate both
# accepts healthy numbers and actually rejects regressions.
#
# Inputs (all -D):
#   TOPOCON_CLI  path to the topocon binary
#   BENCH_DIR    directory holding the bench binaries
#   BASELINE     committed baseline (bench/baselines/*.json)
#   FILTER       --benchmark_filter passed to the bench run; every
#                baseline entry must match it (missing names fail the gate)
#   WORK_DIR     scratch directory (recreated)

foreach(var TOPOCON_CLI BENCH_DIR BASELINE FILTER WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(results "${WORK_DIR}/results.json")

# 1. Capture one benchmark run.
execute_process(
  COMMAND ${TOPOCON_CLI} bench bench_omission
          --bench-dir=${BENCH_DIR} --filter=${FILTER} --repetitions=1
          --json=${results}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "bench run exited ${code}:\n${output}")
endif()

# 2. The committed baseline must pass (generous tolerances by design).
execute_process(
  COMMAND ${TOPOCON_CLI} bench --compare=${BASELINE} --input=${results}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "bench gate FAILED against the committed baseline ${BASELINE} "
    "(exit ${code}):\n${output}")
endif()

# 3. An injected 1ns baseline with zero tolerance must fail: every real
# measurement is a "regression" against it. A gate that cannot reject is
# no gate.
set(injected "${WORK_DIR}/injected.json")
file(WRITE ${injected} "{
  \"schema\": \"topocon-bench-baseline-v1\",
  \"default_tolerance_pct\": 0,
  \"benchmarks\": [
    {\"name\": \"BM_CheckOmission/3/1\", \"real_time_ns\": 1}
  ]
}
")
execute_process(
  COMMAND ${TOPOCON_CLI} bench --compare=${injected} --input=${results}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
if(code EQUAL 0)
  message(FATAL_ERROR
    "bench gate PASSED an injected 1ns baseline — the regression check "
    "is not rejecting:\n${output}")
endif()

message(STATUS "bench gate OK: passes ${BASELINE}, rejects injected")
