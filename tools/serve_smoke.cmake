# Daemon-level smoke test for `topocon serve` / `topocon client`.
#
# Starts the daemon on a private Unix socket, submits SCENARIO over the
# wire, byte-compares the served artifact against GOLDEN, re-submits to
# prove the repeat is answered from the verdict cache (via the `stats`
# frame), and shuts the daemon down cleanly.
#
# Usage:
#   cmake -DTOPOCON_CLI=... -DSCENARIO=... -DGOLDEN=... -DWORK_DIR=...
#         -P serve_smoke.cmake

foreach(var TOPOCON_CLI SCENARIO GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
# sun_path is capped at 108 bytes and build trees nest deep, so the
# socket lives under /tmp, keyed by this script's process id.
string(RANDOM LENGTH 8 ALPHABET 0123456789abcdef tag)
set(socket "/tmp/topocon-smoke-${tag}.sock")

function(stop_daemon)
  execute_process(
    COMMAND "${TOPOCON_CLI}" client --socket=${socket} shutdown
    TIMEOUT 30
    OUTPUT_QUIET ERROR_QUIET)
endfunction()

# Background the daemon through sh: execute_process itself always waits,
# and the redirects keep it from blocking on the daemon's pipes.
execute_process(
  COMMAND sh -c "'${TOPOCON_CLI}' serve --socket='${socket}' \
    > '${WORK_DIR}/serve.log' 2>&1 & echo $! > '${WORK_DIR}/serve.pid'"
  RESULT_VARIABLE launch_status)
if(NOT launch_status EQUAL 0)
  message(FATAL_ERROR "serve_smoke: failed to launch the daemon")
endif()

# Wait for the listener (the daemon creates the socket before serving).
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS "${socket}")
    set(ready TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
endforeach()
if(NOT ready)
  message(FATAL_ERROR "serve_smoke: daemon never created ${socket}")
endif()

# First submission: computed, and byte-identical to the `topocon run`
# golden artifact.
execute_process(
  COMMAND "${TOPOCON_CLI}" client --socket=${socket}
    --out=${WORK_DIR}/first.json submit ${SCENARIO}
  TIMEOUT 300
  RESULT_VARIABLE submit_status
  ERROR_VARIABLE submit_stderr)
if(NOT submit_status EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "serve_smoke: first submit failed:\n${submit_stderr}")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
    "${WORK_DIR}/first.json" "${GOLDEN}"
  RESULT_VARIABLE first_diff)
if(NOT first_diff EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR
    "serve_smoke: served artifact differs from golden ${GOLDEN}")
endif()

# Second submission: must be served from the cache, byte-identically.
execute_process(
  COMMAND "${TOPOCON_CLI}" client --socket=${socket}
    --out=${WORK_DIR}/second.json submit ${SCENARIO}
  TIMEOUT 300
  RESULT_VARIABLE resubmit_status
  ERROR_VARIABLE resubmit_stderr)
if(NOT resubmit_status EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "serve_smoke: re-submit failed:\n${resubmit_stderr}")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
    "${WORK_DIR}/second.json" "${WORK_DIR}/first.json"
  RESULT_VARIABLE second_diff)
if(NOT second_diff EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "serve_smoke: cached artifact differs from computed")
endif()

# The counters prove the repeat skipped the engine: one executed sweep,
# one cache hit.
execute_process(
  COMMAND "${TOPOCON_CLI}" client --socket=${socket} stats
  TIMEOUT 30
  RESULT_VARIABLE stats_status
  OUTPUT_VARIABLE stats_frame)
if(NOT stats_status EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "serve_smoke: stats request failed")
endif()
if(NOT stats_frame MATCHES "\"cache_hits\": *1[,}]")
  stop_daemon()
  message(FATAL_ERROR "serve_smoke: expected one cache hit in:\n${stats_frame}")
endif()
if(NOT stats_frame MATCHES "\"jobs_completed\": *1[,}]")
  stop_daemon()
  message(FATAL_ERROR
    "serve_smoke: expected exactly one executed sweep in:\n${stats_frame}")
endif()

# Clean shutdown: the client sees `bye` (exit 0) and the daemon removes
# its socket on the way out.
execute_process(
  COMMAND "${TOPOCON_CLI}" client --socket=${socket} shutdown
  TIMEOUT 60
  RESULT_VARIABLE bye_status)
if(NOT bye_status EQUAL 0)
  message(FATAL_ERROR "serve_smoke: shutdown did not answer with bye")
endif()
foreach(attempt RANGE 100)
  if(NOT EXISTS "${socket}")
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
endforeach()
if(EXISTS "${socket}")
  message(FATAL_ERROR "serve_smoke: daemon left ${socket} behind")
endif()

message(STATUS "serve_smoke: OK (artifact golden-identical, repeat cached)")
