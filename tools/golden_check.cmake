# Golden-compatibility check for the Session/Query redesign, run via
# `cmake -P`: `topocon run SCENARIO --json` (or, with -DFORMAT=csv, the
# scenario's CSV rendering on stdout) must reproduce the committed
# reference artifact byte for byte, at every requested thread count.
#
# Inputs (all -D):
#   TOPOCON_CLI  path to the topocon binary
#   SCENARIO     scenario name to run
#   GOLDEN       committed reference artifact (tests/golden/*)
#   THREADS      comma-separated thread counts to verify, e.g. "1,2,8"
#   WORK_DIR     scratch directory (recreated)
#   RUN_FLAGS    optional extra flags for `run` (semicolon-separated),
#                e.g. "--chunk=1" to force finest sub-root sharding
#   FORMAT       "json" (default): capture the --json document;
#                "csv": capture `run --format=csv` stdout (status lines
#                go to stderr in csv mode, so stdout is the artifact)

foreach(var TOPOCON_CLI SCENARIO GOLDEN THREADS WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()
if(NOT DEFINED RUN_FLAGS)
  set(RUN_FLAGS "")
endif()
if(NOT DEFINED FORMAT)
  set(FORMAT "json")
endif()

string(REPLACE "," ";" THREADS "${THREADS}")

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(threads IN LISTS THREADS)
  set(artifact "${WORK_DIR}/t${threads}.${FORMAT}")
  if(FORMAT STREQUAL "csv")
    execute_process(
      COMMAND ${TOPOCON_CLI} run ${SCENARIO} ${RUN_FLAGS}
              --threads=${threads} --format=csv
      RESULT_VARIABLE code
      OUTPUT_FILE ${artifact}
      ERROR_VARIABLE output)
  else()
    execute_process(
      COMMAND ${TOPOCON_CLI} run ${SCENARIO} ${RUN_FLAGS}
              --threads=${threads} --json=${artifact}
      RESULT_VARIABLE code
      OUTPUT_VARIABLE output
      ERROR_VARIABLE output)
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "topocon run ${SCENARIO} ${RUN_FLAGS} --threads=${threads} exited "
      "${code}:\n${output}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${artifact} ${GOLDEN}
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${SCENARIO} at ${threads} thread(s) is NOT byte-identical to the "
      "golden ${GOLDEN}")
  endif()
endforeach()

message(STATUS "golden OK: ${SCENARIO} at threads {${THREADS}}")
