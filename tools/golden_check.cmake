# Golden-compatibility check for the Session/Query redesign, run via
# `cmake -P`: `topocon run SCENARIO --json` must reproduce the committed
# pre-redesign topocon-sweep-v1 document byte for byte, at every
# requested thread count.
#
# Inputs (all -D):
#   TOPOCON_CLI  path to the topocon binary
#   SCENARIO     scenario name to run
#   GOLDEN       committed reference document (tests/golden/*.json)
#   THREADS      comma-separated thread counts to verify, e.g. "1,2,8"
#   WORK_DIR     scratch directory (recreated)
#   RUN_FLAGS    optional extra flags for `run` (semicolon-separated),
#                e.g. "--chunk=1" to force finest sub-root sharding

foreach(var TOPOCON_CLI SCENARIO GOLDEN THREADS WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()
if(NOT DEFINED RUN_FLAGS)
  set(RUN_FLAGS "")
endif()

string(REPLACE "," ";" THREADS "${THREADS}")

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(threads IN LISTS THREADS)
  set(artifact "${WORK_DIR}/t${threads}.json")
  execute_process(
    COMMAND ${TOPOCON_CLI} run ${SCENARIO} ${RUN_FLAGS} --threads=${threads}
            --json=${artifact}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "topocon run ${SCENARIO} ${RUN_FLAGS} --threads=${threads} exited "
      "${code}:\n${output}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${artifact} ${GOLDEN}
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${SCENARIO} at ${threads} thread(s) is NOT byte-identical to the "
      "golden ${GOLDEN}")
  endif()
endforeach()

message(STATUS "golden OK: ${SCENARIO} at threads {${THREADS}}")
