// topocon -- operator CLI over the scenario catalog and the api facade
// (Session/Query).
//
//   topocon list
//   topocon describe SCENARIO
//   topocon run SCENARIO [--threads=N] [--chunk=N] [--frontier=MODE]
//                        [--json=PATH] [--format=table|csv]
//                        [--n=N] [--param-min=V] [--param-max=V]
//                        [--seed=N] [--count=N]
//                        [--metrics] [--trace=PATH] [--telemetry-json]
//   topocon resume PATH [--threads=N] [--chunk=N] [--frontier=MODE]
//                       [--format=table|csv] [--metrics] [--trace=PATH]
//   topocon fuzz [--seed=N] [--count=N] [--n=N] [--depth=N] [--threads=N]
//                [--frontier=MODE] [--trace=PATH]
//   topocon bench [BINARY...] [--bench-dir=PATH] [--filter=REGEX]
//                 [--repetitions=N] [--json=PATH]
//                 [--compare=BASELINE] [--input=RESULTS]
//
// `run` expands the scenario into an api::Plan (a named list of pure-data
// api::Query values) and executes it on one api::Session. With
// `--json=PATH` an Observer checkpoints incrementally: PATH holds a
// line-oriented checkpoint (header + one record line per completed job,
// flushed as jobs finish) until the sweep completes, at which point it is
// atomically replaced by the finalized topocon-sweep-v1 document. The
// checkpoint header carries the serialized queries themselves, so a run
// killed at any point can be finished with `topocon resume PATH` even if
// the catalog changed meanwhile: completed jobs are loaded, the missing
// ones re-run from the checkpointed query descriptions, and the final
// document is byte-identical to an uninterrupted run at any thread count
// (the engine's determinism contract).
//
// `--format=csv` renders the records as one CSV table on stdout (for
// plotting the E4/E6/E7 convergence curves); status messages then go to
// stderr so stdout is a clean artifact.
//
// `run`/`resume` additionally draw a single-line progress bar on stderr,
// fed by the Observer's per-chunk events -- but only when stderr is a
// terminal, so piped or redirected invocations (including `--json` runs
// under CI) stay byte-clean.
//
// `fuzz` is the composed-adversary differential harness: it expands the
// seeded fuzzer (scenario/fuzz.hpp) into `--count` composed points and
// runs every point through the oracle checker (check_solvability_oracle,
// the single-scan reference expansion), the serial FrontierEngine checker,
// and the chunk-sharded parallel checker at chunk sizes 1 and default --
// then demands bit-identical verdicts, certified depths, and per-depth
// statistics (including interned-view counts) from all of them. Any
// divergence prints the seed, the point index, and its replayable spec
// label to stderr and exits 1. The stdout table carries no timings, so a
// fixed seed is byte-reproducible across runs and thread counts.
//
// `bench` wraps the google-benchmark binaries of the build tree so the
// perf trajectory has one operator entry point: `--filter` and
// `--repetitions` forward to the benchmark flags, `--json` captures the
// benchmark JSON artifact (one selected binary). `--compare=BASELINE`
// turns the command into a regression gate: the captured results (or an
// existing file via `--input`, which skips running anything) are checked
// against the committed baseline (runtime/sweep/bench_compare.hpp) and a
// regression or a missing benchmark exits 1.
//
// Observability (see telemetry/metrics.hpp for the determinism
// contract): `--metrics` prints a per-job counter table on stderr after
// run/resume, `--trace=PATH` writes a Chrome-trace span file
// (chrome://tracing, Perfetto) of jobs, depths, levels, and chunks, and
// `--telemetry-json` (run only, with --json) embeds each record's
// counters as a "telemetry" section of the document -- recorded in the
// checkpoint meta, so a resumed run stays byte-identical to an
// uninterrupted one. None of the three changes stdout or the artifact
// bytes other than that opt-in section.
//
// Exit codes: 0 success, 1 I/O, benchmark, or bench-gate failure,
// 2 usage error, 3 simulated crash (--fail-after, testing only).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/family.hpp"
#include "analysis/report.hpp"
#include "api/api.hpp"
#include "core/frontier.hpp"
#include "core/solvability.hpp"
#include "core/spill.hpp"
#include "runtime/sweep/bench_compare.hpp"
#include "runtime/sweep/checkpoint.hpp"
#include "runtime/sweep/cli.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/render.hpp"
#include "scenario/scenario.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace {

using namespace topocon;

int usage(std::ostream& out, int code) {
  out << "usage: topocon COMMAND [ARGS]\n"
         "\n"
         "  list                      catalog of named scenarios\n"
         "  describe SCENARIO         grid and documentation of one "
         "scenario\n"
         "  run SCENARIO [FLAGS]      expand the grid and run it\n"
         "  resume PATH [FLAGS]       finish an interrupted `run --json` "
         "sweep\n"
         "  fuzz [FLAGS]              differential-test seeded composed "
         "adversaries\n"
         "  bench [BINARY...] [FLAGS] run the google-benchmark binaries\n"
         "  serve [FLAGS]             long-running sweep daemon on a Unix "
         "socket\n"
         "  client [FLAGS] ACTION     drive a running daemon "
         "(submit/stats/shutdown)\n"
         "  version | --version       protocol and artifact schema "
         "versions\n"
         "\n"
         "run/resume flags:\n"
         "  --threads=N               engine threads (default: hardware "
         "concurrency;\n"
         "                            results are identical for every N)\n"
         "  --chunk=N                 frontier states per expansion chunk "
         "(default\n"
         "                            4096; like --threads an execution "
         "detail --\n"
         "                            results are identical for every N)\n"
         "  --frontier=MODE           dedup-table representation: auto "
         "(default,\n"
         "                            per-chunk heuristic), dense, or "
         "sparse; an\n"
         "                            execution detail -- results are "
         "identical\n"
         "                            for every mode\n"
         "  --spill-budget-mb=N       soft cap on resident expanded-but-"
         "unmerged\n"
         "                            frontier bytes; chunks beyond their "
         "fair share\n"
         "                            spill to temp files and stream back "
         "in merge\n"
         "                            order (0/unset = never spill; like "
         "--threads an\n"
         "                            execution detail -- artifacts are "
         "byte-identical\n"
         "                            at every budget)\n"
         "  --spill-dir=PATH          directory for spill files (default: "
         "the system\n"
         "                            temp dir); always cleaned up on "
         "exit\n"
         "  --json=PATH               checkpoint to PATH while running, "
         "then finalize\n"
         "                            it as a topocon-sweep-v1 document\n"
         "  --format=table|csv        report style (default: table); csv "
         "prints one\n"
         "                            row per depth for plotting, with "
         "status\n"
         "                            messages moved to stderr\n"
         "  --n=N                     override the scenario's process "
         "count\n"
         "  --param-min=V             lower end of the parameter grid\n"
         "  --param-max=V             upper end of the parameter grid\n"
         "  --seed=N                  (run only) override the scenario's "
         "seed, full\n"
         "                            uint64 range (fuzz-composed; "
         "--param-min stays\n"
         "                            usable as a legacy alias)\n"
         "  --count=N                 (run only) override the scenario's "
         "point count\n"
         "                            (fuzz-composed; --param-max stays "
         "usable as a\n"
         "                            legacy alias)\n"
         "  --metrics                 print a per-job telemetry counter "
         "table on\n"
         "                            stderr after the run (stdout stays "
         "clean)\n"
         "  --trace=PATH              write a Chrome-trace span file of "
         "the run\n"
         "                            (open in chrome://tracing or "
         "Perfetto)\n"
         "  --telemetry-json          (run only, with --json) embed each "
         "record's\n"
         "                            deterministic counters as a "
         "\"telemetry\"\n"
         "                            section of the document\n"
         "  --fail-after=K            (testing) crash-exit 3 after K "
         "checkpoint appends\n"
         "\n"
         "fuzz flags:\n"
         "  --seed=N                  fuzzer seed (default 6); a fixed "
         "seed is\n"
         "                            byte-reproducible across runs and "
         "thread counts\n"
         "  --count=N                 composed points to draw and check "
         "(default 8)\n"
         "  --n=N                     process count of every point "
         "(default 2)\n"
         "  --depth=N                 max combinator nesting of a spec "
         "(default 2)\n"
         "  --threads=N               pool size for the parallel checker "
         "legs\n"
         "  --frontier=MODE           dedup-table representation for every "
         "checker\n"
         "                            leg (auto|dense|sparse, default "
         "auto)\n"
         "  --spill-budget-mb=N       out-of-core frontier budget for "
         "every checker\n"
         "                            leg (see run flags); verdicts are "
         "identical at\n"
         "                            every budget\n"
         "  --spill-dir=PATH          directory for spill files\n"
         "  --trace=PATH              write a Chrome-trace span file of "
         "every\n"
         "                            checker leg\n"
         "\n"
         "bench flags:\n"
         "  --bench-dir=PATH          directory holding the bench_* "
         "binaries\n"
         "                            (default: the bench/ directory of "
         "the build\n"
         "                            tree this topocon sits in)\n"
         "  --filter=REGEX            forwarded as --benchmark_filter\n"
         "  --repetitions=N           forwarded as "
         "--benchmark_repetitions\n"
         "  --json=PATH               benchmark JSON artifact "
         "(--benchmark_out);\n"
         "                            requires exactly one selected "
         "binary\n"
         "  --compare=BASELINE        gate the results against a "
         "committed baseline\n"
         "                            (bench/baselines/*.json); "
         "regressions exit 1\n"
         "  --input=RESULTS           compare an existing benchmark JSON "
         "file\n"
         "                            instead of running anything "
         "(with --compare)\n"
         "\n"
         "serve flags:\n"
         "  --socket=PATH             Unix-domain socket to listen on "
         "(required;\n"
         "                            a stale file at PATH is replaced)\n"
         "  --threads=N               session pool size (default: hardware "
         "concurrency)\n"
         "  --queue-limit=N           queued submissions beyond the one "
         "running sweep\n"
         "                            before `overloaded` (default 16)\n"
         "  --cache-entries=N         verdict cache artifact count limit "
         "(default 64)\n"
         "  --cache-mb=N              verdict cache byte limit in MiB "
         "(default 64)\n"
         "  --ring=N                  event-ring capacity per subscriber "
         "(default 1024)\n"
         "  --spill-budget-mb=N       out-of-core frontier budget for "
         "every sweep the\n"
         "                            daemon runs (see run flags)\n"
         "  --spill-dir=PATH          directory for spill files\n"
         "  --quiet                   no status lines on stderr\n"
         "\n"
         "client actions (all need --socket=PATH):\n"
         "  submit SCENARIO [--n= --param-min= --param-max= --seed= "
         "--count=]\n"
         "         [--out=PATH] [--subscribe]\n"
         "                            submit a scenario, wait for the "
         "artifact, and\n"
         "                            write it to --out (default stdout); "
         "--subscribe\n"
         "                            streams progress events to stderr\n"
         "  stats                     print the daemon's counter frame\n"
         "  shutdown                  ask the daemon to exit cleanly\n";
  return code;
}

enum class Format { kTable, kCsv };

struct RunFlags {
  int threads = 0;
  int chunk = 0;  // 0 = default_chunk_states()
  std::optional<FrontierMode> frontier;
  std::optional<std::uint64_t> spill_budget_mb;  // 0 = disable explicitly
  std::string spill_dir;  // empty = temp_directory_path()
  std::string json_path;
  Format format = Format::kTable;
  scenario::GridOverrides overrides;
  bool metrics = false;        // per-job counter table on stderr
  std::string trace_path;      // Chrome-trace span file; empty = off
  bool telemetry_json = false; // "telemetry" sections in the --json doc
  int fail_after = 0;  // 0 = disabled
};

/// Parses the flags shared by run/resume; returns false on an unknown
/// argument (after printing to stderr).
bool parse_flags(int argc, char** argv, int first, RunFlags* flags) {
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (const auto v = sweep::flag_value(arg, "threads")) {
        flags->threads = sweep::parse_int_value("threads", *v);
      } else if (const auto v = sweep::flag_value(arg, "chunk")) {
        flags->chunk = sweep::parse_int_value("chunk", *v);
        if (flags->chunk <= 0) {
          std::cerr << "topocon: --chunk must be >= 1\n";
          return false;
        }
      } else if (const auto v = sweep::flag_value(arg, "frontier")) {
        flags->frontier = frontier_mode_from_name(*v);
        if (!flags->frontier.has_value()) {
          std::cerr << "topocon: --frontier expects 'auto', 'dense', or "
                       "'sparse', got '"
                    << *v << "'\n";
          return false;
        }
      } else if (const auto v = sweep::flag_value(arg, "spill-budget-mb")) {
        flags->spill_budget_mb =
            sweep::parse_uint64_value("spill-budget-mb", *v);
      } else if (const auto v = sweep::flag_value(arg, "spill-dir")) {
        if (v->empty()) {
          std::cerr << "topocon: --spill-dir needs a non-empty path\n";
          return false;
        }
        flags->spill_dir = *v;
      } else if (const auto v = sweep::flag_value(arg, "json")) {
        if (v->empty()) {
          std::cerr << "topocon: --json needs a non-empty path\n";
          return false;
        }
        flags->json_path = *v;
      } else if (const auto v = sweep::flag_value(arg, "format")) {
        if (*v == "table") {
          flags->format = Format::kTable;
        } else if (*v == "csv") {
          flags->format = Format::kCsv;
        } else {
          std::cerr << "topocon: --format expects 'table' or 'csv', got '"
                    << *v << "'\n";
          return false;
        }
      } else if (const auto v = sweep::flag_value(arg, "n")) {
        flags->overrides.n = sweep::parse_int_value("n", *v);
      } else if (const auto v = sweep::flag_value(arg, "param-min")) {
        flags->overrides.param_min = sweep::parse_int_value("param-min", *v);
      } else if (const auto v = sweep::flag_value(arg, "param-max")) {
        flags->overrides.param_max = sweep::parse_int_value("param-max", *v);
      } else if (const auto v = sweep::flag_value(arg, "seed")) {
        flags->overrides.seed = sweep::parse_uint64_value("seed", *v);
      } else if (const auto v = sweep::flag_value(arg, "count")) {
        flags->overrides.count = sweep::parse_int_value("count", *v);
      } else if (arg == "--metrics") {
        flags->metrics = true;
      } else if (const auto v = sweep::flag_value(arg, "trace")) {
        if (v->empty()) {
          std::cerr << "topocon: --trace needs a non-empty path\n";
          return false;
        }
        flags->trace_path = *v;
      } else if (arg == "--telemetry-json") {
        flags->telemetry_json = true;
      } else if (const auto v = sweep::flag_value(arg, "fail-after")) {
        flags->fail_after = sweep::parse_int_value("fail-after", *v);
      } else {
        std::cerr << "topocon: unknown argument '" << arg << "'\n";
        return false;
      }
    } catch (const std::invalid_argument& error) {
      std::cerr << "topocon: " << error.what() << "\n";
      return false;
    }
  }
  return true;
}

/// Applies --spill-budget-mb/--spill-dir as the process-wide default
/// (core/spill.hpp); the engine picks it up through resolve_spill. No-op
/// when neither flag was given, leaving any --sweep-spill-* default.
void apply_spill_flags(const std::optional<std::uint64_t>& budget_mb,
                       const std::string& dir) {
  if (!budget_mb.has_value() && dir.empty()) return;
  SpillOptions spill = default_spill();
  if (budget_mb.has_value()) {
    spill.budget_bytes = spill_budget_mb_to_bytes(*budget_mb);
  }
  if (!dir.empty()) spill.dir = dir;
  set_default_spill(spill);
}

/// Status stream: stderr when stdout is a CSV artifact.
std::ostream& info_stream(const RunFlags& flags) {
  return flags.format == Format::kCsv ? std::cerr : std::cout;
}

void render(std::ostream& out, const RunFlags& flags,
            const std::string& sweep_name,
            const std::vector<sweep::JobRecord>& records) {
  if (flags.format == Format::kCsv) {
    scenario::render_records_csv(out, sweep_name, records);
  } else {
    scenario::render_records(out, sweep_name, records);
  }
}

sweep::CheckpointHeader make_header(const std::string& scenario_name,
                                    const scenario::GridOverrides& overrides,
                                    bool telemetry_json,
                                    const std::vector<api::Query>& queries) {
  sweep::CheckpointHeader header;
  header.sweep_name = scenario_name;
  header.num_jobs = queries.size();
  header.meta.emplace_back("scenario", scenario_name);
  if (overrides.n.has_value()) {
    header.meta.emplace_back("n", std::to_string(*overrides.n));
  }
  if (overrides.param_min.has_value()) {
    header.meta.emplace_back("param_min",
                             std::to_string(*overrides.param_min));
  }
  if (overrides.param_max.has_value()) {
    header.meta.emplace_back("param_max",
                             std::to_string(*overrides.param_max));
  }
  if (overrides.seed.has_value()) {
    header.meta.emplace_back("seed", std::to_string(*overrides.seed));
  }
  if (overrides.count.has_value()) {
    header.meta.emplace_back("count", std::to_string(*overrides.count));
  }
  // Rides with the artifact so resume reproduces the same document shape
  // (records with or without "telemetry" sections) without re-passing the
  // flag.
  if (telemetry_json) {
    header.meta.emplace_back("telemetry_json", "1");
  }
  // The full job description rides along, so resume rebuilds the exact
  // job list from the checkpoint instead of re-expanding the catalog.
  for (const api::Query& query : queries) {
    header.queries.push_back(api::query_to_json(query));
  }
  return header;
}

scenario::GridOverrides overrides_from_meta(
    const sweep::CheckpointHeader& header) {
  scenario::GridOverrides overrides;
  for (const auto& [key, value] : header.meta) {
    if (key == "n") {
      overrides.n = sweep::parse_int_value("n", value);
    } else if (key == "param_min") {
      overrides.param_min = sweep::parse_int_value("param-min", value);
    } else if (key == "param_max") {
      overrides.param_max = sweep::parse_int_value("param-max", value);
    } else if (key == "seed") {
      overrides.seed = sweep::parse_uint64_value("seed", value);
    } else if (key == "count") {
      overrides.count = sweep::parse_int_value("count", value);
    }
  }
  return overrides;
}

const std::string* meta_value(const sweep::CheckpointHeader& header,
                              std::string_view key) {
  for (const auto& [k, v] : header.meta) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Writes `payload` to PATH atomically (tmp + rename), so a crash while
/// writing never destroys what PATH held before.
bool atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& payload) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      std::cerr << "topocon: cannot write " << tmp_path << "\n";
      return false;
    }
    payload(out);
    if (!out) {
      std::cerr << "topocon: write to " << tmp_path << " failed\n";
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::cerr << "topocon: cannot rename " << tmp_path << " to " << path
              << "\n";
    return false;
  }
  return true;
}

/// Replaces the checkpoint at PATH with the finalized document.
bool finalize_json(const std::string& path, const std::string& sweep_name,
                   const std::vector<sweep::JobRecord>& records) {
  return atomic_write(path, [&](std::ostream& out) {
    sweep::JsonWriter writer(out);
    writer.begin_object();
    writer.member("schema", sweep::kSweepSchema);
    writer.key("sweeps");
    writer.begin_array();
    sweep::write_sweep_json(writer, sweep_name, records);
    writer.end_array();
    writer.end_object();
    out << '\n';
  });
}

/// Single-line stderr progress display for run/resume, fed by the
/// Observer's per-chunk events. TTY-only: when stderr is not a terminal
/// (CI, piping, `2>file`) it draws nothing, so redirected output stays
/// byte-clean. Callbacks arrive serialized from the engine, so the bar
/// needs no locking of its own.
class ProgressBar {
 public:
  ProgressBar(std::string name, std::size_t jobs_total)
      : name_(std::move(name)),
        jobs_total_(jobs_total),
        enabled_(isatty(fileno(stderr)) != 0) {}
  ~ProgressBar() { clear(); }

  void job_started(const std::string& label) { draw(label + " starting"); }
  void chunk_done(const std::string& label, const ChunkProgress& progress) {
    // Throughput/ETA of the current level, derived purely from the
    // existing per-chunk events (no engine ABI change): the frontier
    // being expanded has frontier_states states spread uniformly over
    // chunks_total chunks, so chunks_done/chunks_total of it is behind
    // us. Level changes reset the clock.
    if (progress.depth != rate_depth_ || progress.level != rate_level_ ||
        progress.chunks_done <= 1) {
      rate_depth_ = progress.depth;
      rate_level_ = progress.level;
      level_start_ = std::chrono::steady_clock::now();
    }
    std::string rate;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      level_start_)
            .count();
    if (elapsed > 0 && progress.chunks_done > 0 &&
        progress.chunks_done <= progress.chunks_total) {
      const double done_states =
          static_cast<double>(progress.frontier_states) *
          static_cast<double>(progress.chunks_done) /
          static_cast<double>(progress.chunks_total);
      const double eta = elapsed *
                         static_cast<double>(progress.chunks_total -
                                             progress.chunks_done) /
                         static_cast<double>(progress.chunks_done);
      rate = ", " + fmt(done_states / elapsed, 0) + " st/s, ETA " +
             fmt(eta, 1) + "s";
    }
    draw(label + " depth " + std::to_string(progress.depth) + ": level " +
         std::to_string(progress.level) + ", chunk " +
         std::to_string(progress.chunks_done) + "/" +
         std::to_string(progress.chunks_total) + " (" +
         std::to_string(progress.frontier_states) + " states" + rate + ")");
  }
  void depth_done(const std::string& label, const DepthStats& stats) {
    draw(label + " depth " + std::to_string(stats.depth) + " done (" +
         std::to_string(stats.num_leaf_classes) + " classes)");
  }
  void job_done(const std::string& label) {
    ++jobs_done_;
    draw(label + " finished");
  }
  /// Erases the bar (before regular output; also run by the destructor).
  void clear() {
    if (!enabled_ || last_width_ == 0) return;
    std::fprintf(stderr, "\r%*s\r", static_cast<int>(last_width_), "");
    std::fflush(stderr);
    last_width_ = 0;
  }

 private:
  void draw(const std::string& activity) {
    if (!enabled_) return;
    std::string line = "[" + name_ + "] " + std::to_string(jobs_done_) +
                       "/" + std::to_string(jobs_total_) + " jobs | " +
                       activity;
    if (line.size() > kWidth) line.resize(kWidth);
    const std::size_t width = std::max(line.size(), last_width_);
    line.resize(width, ' ');  // overwrite remnants of a longer line
    std::fprintf(stderr, "\r%s", line.c_str());
    std::fflush(stderr);
    last_width_ = width;
  }

  static constexpr std::size_t kWidth = 78;
  std::string name_;
  std::size_t jobs_total_;
  bool enabled_;
  std::size_t jobs_done_ = 0;
  std::size_t last_width_ = 0;
  int rate_depth_ = -1;
  int rate_level_ = -1;
  std::chrono::steady_clock::time_point level_start_{};
};

/// Streams finished jobs into the checkpoint file and feeds the progress
/// bar. `job_index` maps the running plan's job positions to overall job
/// indices (resume runs a suffix of the plan). Crash-exits 3 after
/// `fail_after` appends.
class RunObserver : public api::Observer {
 public:
  RunObserver(sweep::CheckpointWriter* ckpt,
              const std::vector<std::size_t>& job_index, int fail_after,
              const std::vector<api::Query>& queries, ProgressBar* progress,
              bool telemetry_json,
              std::vector<std::optional<telemetry::JobTelemetry>>* telemetry)
      : ckpt_(ckpt),
        job_index_(job_index),
        fail_after_(fail_after),
        queries_(queries),
        progress_(progress),
        telemetry_json_(telemetry_json),
        telemetry_(telemetry) {}

  void on_job_start(std::size_t job, const api::Query& query) override {
    (void)job;
    if (progress_ != nullptr) progress_->job_started(api::label_of(query));
  }

  void on_depth(std::size_t job, const ChunkProgress& chunk) override {
    if (progress_ != nullptr) {
      progress_->chunk_done(api::label_of(queries_[job]), chunk);
    }
  }

  void on_depth(std::size_t job, const DepthStats& stats) override {
    if (progress_ != nullptr) {
      progress_->depth_done(api::label_of(queries_[job]), stats);
    }
  }

  void on_job_telemetry(std::size_t job,
                        const telemetry::JobTelemetry& snapshot) override {
    if (telemetry_ != nullptr) {
      (*telemetry_)[job_index_[job]] = snapshot;
    }
  }

  void on_job_done(std::size_t job,
                   const sweep::JobOutcome& outcome) override {
    if (progress_ != nullptr) {
      progress_->job_done(api::label_of(queries_[job]));
    }
    if (ckpt_ == nullptr) return;
    // Checkpoint lines must match the finalized document shape: a resumed
    // --telemetry-json run reloads these records verbatim, so they carry
    // the "telemetry" section under the same flag.
    ckpt_->append(job_index_[job],
                  sweep::summarize(outcome, telemetry_json_));
    if (fail_after_ > 0 && ++appended_ >= fail_after_) {
      // Simulated kill for the resume tests: no destructors, no final
      // document -- exactly what a crash mid-sweep leaves behind.
      std::_Exit(3);
    }
  }

 private:
  sweep::CheckpointWriter* ckpt_;
  const std::vector<std::size_t>& job_index_;
  int fail_after_;
  const std::vector<api::Query>& queries_;
  ProgressBar* progress_;
  bool telemetry_json_;
  /// Snapshot store indexed by OVERALL job index; null = don't capture.
  std::vector<std::optional<telemetry::JobTelemetry>>* telemetry_;
  int appended_ = 0;
};

/// Shared by run and resume: executes the queries on the session (query j
/// maps to overall job job_index[j]), checkpointing to `ckpt` when given,
/// then merges the fresh records into `records`.
void run_jobs(api::Session& session, const std::string& name,
              const std::vector<api::Query>& queries,
              const std::vector<std::size_t>& job_index,
              sweep::CheckpointWriter* ckpt, int fail_after,
              std::vector<std::optional<sweep::JobRecord>>* records,
              bool telemetry_json = false,
              std::vector<std::optional<telemetry::JobTelemetry>>*
                  telemetry = nullptr) {
  ProgressBar progress(name, queries.size());
  RunObserver observer(ckpt, job_index, fail_after, queries, &progress,
                       telemetry_json, telemetry);
  session.run(name, queries, &observer);
  progress.clear();
  // The session already summarized the run into its history; reuse those
  // records instead of summarizing the outcomes a second time.
  const std::vector<sweep::JobRecord>& fresh = session.history().back().second;
  for (std::size_t j = 0; j < fresh.size(); ++j) {
    (*records)[job_index[j]] = fresh[j];
  }
}

std::vector<sweep::JobRecord> unwrap(
    std::vector<std::optional<sweep::JobRecord>> records) {
  std::vector<sweep::JobRecord> result;
  result.reserve(records.size());
  for (auto& record : records) {
    result.push_back(std::move(*record));
  }
  return result;
}

/// --metrics: the per-job counter table, always on stderr so stdout
/// stays a clean report/CSV artifact. Rows cover only jobs that ran in
/// THIS process -- on resume, jobs restored from the checkpoint have no
/// live counters to report.
void print_metrics_table(
    const std::vector<api::Query>& queries,
    const std::vector<std::optional<telemetry::JobTelemetry>>& telemetry) {
  Table table({"job", "expanded", "dedup", "committed", "interned",
               "chunks", "levels", "high water", "aborts", "spilled",
               "spill MB", "wall s"});
  for (std::size_t column = 1; column <= 11; ++column) {
    table.align_right(column);
  }
  std::size_t rows = 0;
  for (std::size_t j = 0; j < telemetry.size(); ++j) {
    if (!telemetry[j].has_value()) continue;
    const telemetry::TelemetryCounters& c = telemetry[j]->counters;
    const telemetry::SpillStats& spill = telemetry[j]->spill;
    table.add_row({api::label_of(queries[j]),
                   std::to_string(c.states_expanded),
                   std::to_string(c.state_dedup_hits),
                   std::to_string(c.states_committed),
                   std::to_string(c.views_interned),
                   std::to_string(c.chunks_expanded),
                   std::to_string(c.levels_committed),
                   std::to_string(c.frontier_high_water),
                   std::to_string(c.budget_early_aborts),
                   std::to_string(spill.chunks_spilled),
                   fmt(static_cast<double>(spill.bytes_written) /
                           (1024.0 * 1024.0),
                       1),
                   fmt(telemetry[j]->wall_seconds, 3)});
    ++rows;
  }
  std::cerr << "\nTelemetry (" << rows << " job" << (rows == 1 ? "" : "s")
            << " ran in this process):\n";
  table.print(std::cerr);
}

/// Opens the --trace span file; null writer (and no error) when the flag
/// is unset. The TraceWriter must be destroyed before trace_out closes
/// (it writes the closing bracket from its destructor), so the caller
/// keeps both alive for the whole run, stream first.
bool open_trace(const std::string& path, std::ofstream* trace_out,
                std::optional<telemetry::TraceWriter>* writer) {
  if (path.empty()) return true;
  trace_out->open(path, std::ios::trunc);
  if (!*trace_out) {
    std::cerr << "topocon: cannot write " << path << "\n";
    return false;
  }
  writer->emplace(*trace_out);
  return true;
}

int cmd_list() {
  Table table({"scenario", "jobs", "overrides", "summary"});
  table.align_right(1);
  for (const scenario::Scenario& s : scenario::catalog()) {
    const api::Plan plan = scenario::expand_scenario(s, {});
    std::string overrides;
    if (s.supports_n) overrides += "--n ";
    if (s.supports_param_range) overrides += "--param-min/max";
    if (s.supports_seed) overrides += " --seed/--count";
    table.add_row({s.name, std::to_string(plan.queries.size()),
                   overrides.empty() ? "-" : overrides, s.summary});
  }
  table.print(std::cout);
  return 0;
}

int cmd_describe(const std::string& name) {
  const scenario::Scenario* s = scenario::find_scenario(name);
  if (s == nullptr) {
    std::cerr << "topocon: unknown scenario '" << name
              << "' (see `topocon list`)\n";
    return 2;
  }
  std::cout << s->name << " -- " << s->summary << "\n\n"
            << s->description << "\n\n";
  const api::Plan plan = scenario::expand_scenario(*s, {});
  std::cout << "Default grid (" << plan.queries.size() << " jobs):\n";
  Table table({"#", "family", "label", "n", "kind", "depth"});
  table.align_right(0);
  table.align_right(3);
  table.align_right(5);
  for (std::size_t j = 0; j < plan.queries.size(); ++j) {
    const api::Query& query = plan.queries[j];
    table.add_row({std::to_string(j), api::point_of(query).family,
                   api::label_of(query),
                   std::to_string(api::point_of(query).n),
                   to_string(api::kind_of(query)),
                   std::to_string(api::depth_of(query))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_run(const std::string& name, const RunFlags& flags) {
  const scenario::Scenario* s = scenario::find_scenario(name);
  if (s == nullptr) {
    std::cerr << "topocon: unknown scenario '" << name
              << "' (see `topocon list`)\n";
    return 2;
  }
  api::Plan plan;
  try {
    plan = scenario::expand_scenario(*s, flags.overrides);
  } catch (const std::invalid_argument& error) {
    std::cerr << "topocon: " << error.what() << "\n";
    return 2;
  }

  if (flags.fail_after > 0 && flags.json_path.empty()) {
    std::cerr << "topocon: --fail-after only makes sense with --json\n";
    return 2;
  }
  if (flags.telemetry_json && flags.json_path.empty()) {
    std::cerr << "topocon: --telemetry-json only makes sense with --json\n";
    return 2;
  }

  if (flags.chunk > 0) {
    sweep::set_default_chunk_states(static_cast<std::size_t>(flags.chunk));
  }
  if (flags.frontier.has_value()) {
    set_default_frontier_mode(*flags.frontier);
  }
  apply_spill_flags(flags.spill_budget_mb, flags.spill_dir);
  std::ofstream trace_out;
  std::optional<telemetry::TraceWriter> trace;
  if (!open_trace(flags.trace_path, &trace_out, &trace)) return 1;
  api::Session session(
      {.num_threads = flags.threads,
       .record_global = false,
       .collect_telemetry = flags.metrics,
       .telemetry_in_records = flags.telemetry_json,
       .trace = trace.has_value() ? &*trace : nullptr});
  std::vector<std::size_t> job_index(plan.queries.size());
  for (std::size_t j = 0; j < job_index.size(); ++j) job_index[j] = j;
  std::vector<std::optional<sweep::JobRecord>> records(plan.queries.size());
  std::vector<std::optional<telemetry::JobTelemetry>> telemetry(
      plan.queries.size());
  auto* snapshots = flags.metrics ? &telemetry : nullptr;

  int code = 0;
  if (!flags.json_path.empty()) {
    std::ofstream ckpt_out(flags.json_path, std::ios::trunc);
    if (!ckpt_out) {
      std::cerr << "topocon: cannot write " << flags.json_path << "\n";
      return 1;
    }
    sweep::CheckpointWriter ckpt(ckpt_out);
    ckpt.write_header(make_header(s->name, flags.overrides,
                                  flags.telemetry_json, plan.queries));
    run_jobs(session, plan.name, plan.queries, job_index, &ckpt,
             flags.fail_after, &records, flags.telemetry_json, snapshots);
    ckpt_out.close();
    const std::vector<sweep::JobRecord> final_records =
        unwrap(std::move(records));
    if (!finalize_json(flags.json_path, s->name, final_records)) {
      code = 1;
    } else {
      info_stream(flags) << "Wrote " << flags.json_path << "\n\n";
      render(std::cout, flags, s->name, final_records);
    }
  } else {
    run_jobs(session, plan.name, plan.queries, job_index, nullptr, 0,
             &records, false, snapshots);
    render(std::cout, flags, s->name, unwrap(std::move(records)));
  }
  if (flags.metrics) print_metrics_table(plan.queries, telemetry);
  if (trace.has_value()) {
    trace.reset();  // writes the closing bracket
    std::cerr << "topocon: wrote trace " << flags.trace_path << "\n";
  }
  return code;
}

int cmd_resume(const std::string& path, const RunFlags& flags) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "topocon: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  if (!sweep::looks_like_checkpoint(text)) {
    // Either already finalized, or not ours at all.
    try {
      const sweep::SweepDocument doc =
          sweep::read_sweep_document(std::string_view(text));
      info_stream(flags) << path
                         << " is already finalized; nothing to resume.\n\n";
      for (const auto& [sweep_name, records] : doc.sweeps) {
        render(std::cout, flags, sweep_name, records);
      }
      return 0;
    } catch (const std::runtime_error& error) {
      std::cerr << "topocon: " << path
                << " is neither a checkpoint nor a sweep document: "
                << error.what() << "\n";
      return 1;
    }
  }

  sweep::CheckpointState state;
  try {
    state = sweep::read_checkpoint(std::string_view(text));
  } catch (const std::runtime_error& error) {
    std::cerr << "topocon: corrupt checkpoint " << path << ": "
              << error.what() << "\n";
    return 1;
  }

  // The job list: from the checkpointed query descriptions when present
  // (the full job description travels with the artifact); for older
  // checkpoints, by re-expanding the named scenario.
  const std::string sweep_name = state.header.sweep_name;
  std::vector<api::Query> queries;
  if (!state.header.queries.empty()) {
    try {
      for (const sweep::JsonValue& value : state.header.queries) {
        queries.push_back(api::query_from_json(value));
      }
    } catch (const std::runtime_error& error) {
      std::cerr << "topocon: corrupt checkpoint " << path << ": "
                << error.what() << "\n";
      return 1;
    }
  } else {
    const std::string* scenario_name = meta_value(state.header, "scenario");
    const scenario::Scenario* s =
        scenario_name != nullptr ? scenario::find_scenario(*scenario_name)
                                 : nullptr;
    if (s == nullptr) {
      std::cerr << "topocon: checkpoint " << path
                << " carries no queries and names no known scenario\n";
      return 1;
    }
    try {
      queries =
          scenario::expand_scenario(*s, overrides_from_meta(state.header))
              .queries;
    } catch (const std::invalid_argument& error) {
      std::cerr << "topocon: " << error.what() << "\n";
      return 1;
    }
    if (queries.size() != state.header.num_jobs) {
      std::cerr << "topocon: checkpoint job count " << state.header.num_jobs
                << " does not match the scenario grid (" << queries.size()
                << " jobs)\n";
      return 1;
    }
  }

  std::vector<std::optional<sweep::JobRecord>> records(queries.size());
  for (auto& [job, record] : state.completed) {
    // Guard against a stale checkpoint from a different producer version:
    // matching job count alone would silently merge records with
    // different semantics and break the byte-identity guarantee.
    const api::Query& expected = queries[job];
    const FamilyPoint& point = api::point_of(expected);
    if (record.family != point.family ||
        record.label != api::label_of(expected) || record.n != point.n) {
      std::cerr << "topocon: checkpoint job " << job << " is "
                << record.family << " " << record.label
                << " but the job list expects " << point.family << " "
                << api::label_of(expected)
                << "; was the checkpoint written by another version?\n";
      return 1;
    }
    records[job] = std::move(record);
  }
  std::vector<api::Query> pending;
  std::vector<std::size_t> job_index;
  for (std::size_t j = 0; j < queries.size(); ++j) {
    if (!records[j].has_value()) {
      job_index.push_back(j);
      pending.push_back(queries[j]);
    }
  }
  info_stream(flags) << "Resuming " << sweep_name << ": "
                     << state.completed.size() << " of " << queries.size()
                     << " jobs checkpointed, " << pending.size() << " to run"
                     << (state.partial_tail
                             ? " (dropped a torn trailing line)"
                             : "")
                     << "\n";

  // Rewrite the checkpoint from the recovered state instead of appending
  // after whatever the kill left behind: a torn trailing line would
  // otherwise concatenate with the first new record and poison the file
  // for any further resume. Record lines serialize deterministically, so
  // the rewrite reproduces the surviving lines byte for byte; atomic_write
  // ensures a crash here cannot lose the progress the checkpoint exists
  // to protect.
  const bool rewritten = atomic_write(path, [&](std::ostream& out) {
    sweep::CheckpointWriter rewrite(out);
    rewrite.write_header(state.header);
    for (std::size_t j = 0; j < records.size(); ++j) {
      if (records[j].has_value()) rewrite.append(j, *records[j]);
    }
  });
  if (!rewritten) return 1;
  std::ofstream ckpt_out(path, std::ios::app);
  if (!ckpt_out) {
    std::cerr << "topocon: cannot append to " << path << "\n";
    return 1;
  }
  sweep::CheckpointWriter ckpt(ckpt_out);
  if (flags.chunk > 0) {
    sweep::set_default_chunk_states(static_cast<std::size_t>(flags.chunk));
  }
  if (flags.frontier.has_value()) {
    set_default_frontier_mode(*flags.frontier);
  }
  apply_spill_flags(flags.spill_budget_mb, flags.spill_dir);
  // The document shape travels with the checkpoint (make_header), not the
  // command line: a --telemetry-json run resumes with telemetry sections
  // automatically, and stays byte-identical to an uninterrupted run.
  const std::string* telemetry_meta = meta_value(state.header,
                                                 "telemetry_json");
  const bool telemetry_json =
      telemetry_meta != nullptr && *telemetry_meta == "1";
  std::ofstream trace_out;
  std::optional<telemetry::TraceWriter> trace;
  if (!open_trace(flags.trace_path, &trace_out, &trace)) return 1;
  api::Session session(
      {.num_threads = flags.threads,
       .record_global = false,
       .collect_telemetry = flags.metrics,
       .telemetry_in_records = telemetry_json,
       .trace = trace.has_value() ? &*trace : nullptr});
  std::vector<std::optional<telemetry::JobTelemetry>> telemetry(
      queries.size());
  run_jobs(session, sweep_name, pending, job_index, &ckpt, flags.fail_after,
           &records, telemetry_json,
           flags.metrics ? &telemetry : nullptr);
  ckpt_out.close();
  const std::vector<sweep::JobRecord> final_records =
      unwrap(std::move(records));
  if (!finalize_json(path, sweep_name, final_records)) return 1;
  info_stream(flags) << "Wrote " << path << "\n\n";
  render(std::cout, flags, sweep_name, final_records);
  if (flags.metrics) print_metrics_table(queries, telemetry);
  if (trace.has_value()) {
    trace.reset();
    std::cerr << "topocon: wrote trace " << flags.trace_path << "\n";
  }
  return 0;
}

struct FuzzFlags {
  scenario::FuzzSpec spec;
  int threads = 0;
  std::optional<FrontierMode> frontier;
  std::optional<std::uint64_t> spill_budget_mb;
  std::string spill_dir;
  std::string trace_path;
};

bool parse_fuzz_flags(int argc, char** argv, FuzzFlags* flags) {
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (const auto v = sweep::flag_value(arg, "seed")) {
        flags->spec.seed = sweep::parse_uint64_value("seed", *v);
      } else if (const auto v = sweep::flag_value(arg, "count")) {
        flags->spec.count = sweep::parse_int_value("count", *v);
      } else if (const auto v = sweep::flag_value(arg, "n")) {
        flags->spec.n = sweep::parse_int_value("n", *v);
      } else if (const auto v = sweep::flag_value(arg, "depth")) {
        flags->spec.depth = sweep::parse_int_value("depth", *v);
      } else if (const auto v = sweep::flag_value(arg, "threads")) {
        flags->threads = sweep::parse_int_value("threads", *v);
      } else if (const auto v = sweep::flag_value(arg, "frontier")) {
        flags->frontier = frontier_mode_from_name(*v);
        if (!flags->frontier.has_value()) {
          std::cerr << "topocon: --frontier expects 'auto', 'dense', or "
                       "'sparse', got '"
                    << *v << "'\n";
          return false;
        }
      } else if (const auto v = sweep::flag_value(arg, "spill-budget-mb")) {
        flags->spill_budget_mb =
            sweep::parse_uint64_value("spill-budget-mb", *v);
      } else if (const auto v = sweep::flag_value(arg, "spill-dir")) {
        if (v->empty()) {
          std::cerr << "topocon: --spill-dir needs a non-empty path\n";
          return false;
        }
        flags->spill_dir = *v;
      } else if (const auto v = sweep::flag_value(arg, "trace")) {
        if (v->empty()) {
          std::cerr << "topocon: --trace needs a non-empty path\n";
          return false;
        }
        flags->trace_path = *v;
      } else {
        std::cerr << "topocon: unknown argument '" << arg << "'\n";
        return false;
      }
    } catch (const std::invalid_argument& error) {
      std::cerr << "topocon: " << error.what() << "\n";
      return false;
    }
  }
  return true;
}

/// First observable difference between two checker results, or "" when
/// they agree on every field the determinism contract covers.
std::string describe_divergence(const SolvabilityResult& oracle,
                                const SolvabilityResult& candidate) {
  if (candidate.verdict != oracle.verdict) {
    return std::string("verdict ") + to_string(candidate.verdict) +
           " (oracle: " + to_string(oracle.verdict) + ")";
  }
  if (candidate.certified_depth != oracle.certified_depth) {
    return "certified depth " + std::to_string(candidate.certified_depth) +
           " (oracle: " + std::to_string(oracle.certified_depth) + ")";
  }
  if (candidate.closure_only != oracle.closure_only) {
    return "closure_only " + std::to_string(candidate.closure_only) +
           " (oracle: " + std::to_string(oracle.closure_only) + ")";
  }
  if (candidate.per_depth.size() != oracle.per_depth.size()) {
    return "analyzed " + std::to_string(candidate.per_depth.size()) +
           " depths (oracle: " + std::to_string(oracle.per_depth.size()) +
           ")";
  }
  for (std::size_t d = 0; d < oracle.per_depth.size(); ++d) {
    if (candidate.per_depth[d] == oracle.per_depth[d]) continue;
    const DepthStats& c = candidate.per_depth[d];
    const DepthStats& o = oracle.per_depth[d];
    return "depth-" + std::to_string(o.depth) + " stats: " +
           std::to_string(c.num_leaf_classes) + " classes/" +
           std::to_string(c.num_components) + " components/" +
           std::to_string(c.interner_views) + " views (oracle: " +
           std::to_string(o.num_leaf_classes) + "/" +
           std::to_string(o.num_components) + "/" +
           std::to_string(o.interner_views) + ")";
  }
  return "";
}

/// `topocon fuzz`: the composed-adversary differential harness (see the
/// file comment). Exit 0 = every point agrees, 1 = divergence or a point
/// failed to build, 2 = usage error.
int cmd_fuzz(const FuzzFlags& flags) {
  if (flags.frontier.has_value()) {
    set_default_frontier_mode(*flags.frontier);
  }
  apply_spill_flags(flags.spill_budget_mb, flags.spill_dir);
  std::vector<FamilyPoint> points;
  try {
    points = scenario::fuzz_points(flags.spec);
  } catch (const std::invalid_argument& error) {
    std::cerr << "topocon: " << error.what() << "\n";
    return 2;
  }
  const SolvabilityOptions options =
      scenario::fuzz_solve_options(flags.spec.n);
  sweep::ThreadPool pool(flags.threads);
  std::ofstream trace_out;
  std::optional<telemetry::TraceWriter> trace;
  if (!open_trace(flags.trace_path, &trace_out, &trace)) return 1;
  const std::string replay =
      "topocon fuzz --seed=" + std::to_string(flags.spec.seed) +
      " --count=" + std::to_string(flags.spec.count) +
      " --n=" + std::to_string(flags.spec.n) +
      " --depth=" + std::to_string(flags.spec.depth);

  Table table({"#", "label", "verdict", "cert depth", "depths", "views"});
  table.align_right(0);
  table.align_right(3);
  table.align_right(4);
  table.align_right(5);
  int divergences = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FamilyPoint& point = points[i];
    const std::string label = family_point_label(point);
    SolvabilityResult oracle;
    try {
      const auto adversary = make_family_adversary(point);
      // One registry per point when tracing, so every checker leg's
      // depth/level/chunk spans land in the trace under a named leg span.
      std::optional<telemetry::MetricsRegistry> registry;
      SolvabilityOptions leg_options = options;
      if (trace.has_value()) {
        registry.emplace(&*trace);
        leg_options.metrics = &*registry;
      }
      const auto timed = [&](const char* leg, auto&& run_leg) {
        const std::uint64_t start =
            trace.has_value() ? trace->now_us() : 0;
        SolvabilityResult result = run_leg();
        if (trace.has_value()) {
          trace->complete(label + " " + leg, "fuzz", start,
                          trace->now_us() - start,
                          {telemetry::TraceArg::num(
                               "point", static_cast<std::uint64_t>(i)),
                           telemetry::TraceArg::str("leg", leg)});
        }
        return result;
      };
      oracle = timed("oracle", [&] {
        return check_solvability_oracle(*adversary, leg_options);
      });
      sweep::ShardingOptions finest;
      finest.chunk_states = 1;
      const struct {
        const char* name;
        SolvabilityResult result;
      } candidates[] = {
          {"serial FrontierEngine", timed("serial", [&] {
             return check_solvability(*adversary, leg_options);
           })},
          {"parallel (chunk=1)", timed("parallel-chunk1", [&] {
             return sweep::parallel_check_solvability(
                 *adversary, leg_options, pool, {}, finest);
           })},
          {"parallel (chunk=default)", timed("parallel-default", [&] {
             return sweep::parallel_check_solvability(
                 *adversary, leg_options, pool, {},
                 sweep::ShardingOptions{});
           })},
      };
      for (const auto& candidate : candidates) {
        const std::string diff =
            describe_divergence(oracle, candidate.result);
        if (diff.empty()) continue;
        ++divergences;
        std::cerr << "topocon fuzz: DIVERGENCE at point " << i << ": "
                  << candidate.name << " reports " << diff << "\n"
                  << "  spec:   " << label << "\n"
                  << "  replay: " << replay << "\n";
      }
    } catch (const std::exception& error) {
      ++divergences;
      std::cerr << "topocon fuzz: point " << i
                << " failed to run: " << error.what() << "\n"
                << "  spec:   " << label << "\n"
                << "  replay: " << replay << "\n";
      continue;
    }
    table.add_row({std::to_string(i), label, to_string(oracle.verdict),
                   oracle.certified_depth >= 0
                       ? std::to_string(oracle.certified_depth)
                       : "-",
                   std::to_string(oracle.per_depth.size()),
                   oracle.per_depth.empty()
                       ? "-"
                       : std::to_string(
                             oracle.per_depth.back().interner_views)});
  }

  std::cout << "Differential fuzz: seed " << flags.spec.seed << ", "
            << points.size() << " composed points (n = " << flags.spec.n
            << ", spec depth <= " << flags.spec.depth << ")\n";
  table.print(std::cout);
  if (divergences > 0) {
    std::cout << "FAIL: " << divergences
              << " divergence(s) between the oracle and the engines\n";
    return 1;
  }
  if (trace.has_value()) {
    trace.reset();
    std::cerr << "topocon: wrote trace " << flags.trace_path << "\n";
  }
  std::cout << "OK: oracle, serial, and parallel checkers agree on every "
               "point\n";
  return 0;
}

/// POSIX-shell single quoting, safe for any byte except NUL.
std::string shell_quote(const std::string& text) {
  std::string quoted = "'";
  for (const char c : text) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

/// The bench regression gate: compares a google-benchmark JSON results
/// file against a committed baseline and prints one verdict row per
/// baseline benchmark. Exit 0 = within tolerance, 1 = a regression or a
/// baseline benchmark missing from the results.
int run_bench_gate(const std::string& baseline_path,
                   const std::string& results_path) {
  const auto slurp = [](const std::string& file_path,
                        std::string* text) {
    std::ifstream in(file_path);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *text = buffer.str();
    return true;
  };
  std::string baseline_text;
  std::string results_text;
  if (!slurp(baseline_path, &baseline_text)) {
    std::cerr << "topocon: cannot read baseline " << baseline_path << "\n";
    return 1;
  }
  if (!slurp(results_path, &results_text)) {
    std::cerr << "topocon: cannot read results " << results_path << "\n";
    return 1;
  }
  sweep::BenchCompareReport report;
  try {
    report = sweep::compare_bench_results(
        sweep::parse_bench_baseline(baseline_text),
        sweep::parse_benchmark_results(results_text));
  } catch (const std::runtime_error& error) {
    std::cerr << "topocon: " << error.what() << "\n";
    return 1;
  }
  Table table({"benchmark", "baseline", "current", "tolerance",
               "base RSS", "cur RSS", "status"});
  table.align_right(1);
  table.align_right(2);
  table.align_right(3);
  table.align_right(4);
  table.align_right(5);
  const auto mib = [](double bytes) {
    std::ostringstream text;
    text << std::fixed << std::setprecision(1)
         << bytes / (1024.0 * 1024.0) << " MiB";
    return text.str();
  };
  for (const sweep::BenchComparison& row : report.rows) {
    // Built with += appends: GCC 12's -Wrestrict misfires on chained
    // std::string operator+ here at -O2.
    std::string baseline = std::to_string(row.baseline_ns);
    baseline += " ns";
    std::string current = "-";
    if (!row.missing) {
      current = std::to_string(static_cast<std::uint64_t>(row.current_ns));
      current += " ns";
    }
    std::string tolerance = "+";
    tolerance += std::to_string(row.tolerance_pct);
    tolerance += "%";
    // RSS columns stay "-" for rows whose baseline gates time only.
    std::string base_rss = "-";
    std::string cur_rss = "-";
    if (row.baseline_rss > 0) {
      base_rss = mib(static_cast<double>(row.baseline_rss));
      if (row.current_rss > 0) cur_rss = mib(row.current_rss);
    }
    std::string status = "ok";
    if (row.missing) {
      status = "MISSING";
    } else if (row.rss_missing) {
      status = "RSS-MISSING";
    } else if (row.regressed && row.rss_regressed) {
      status = "REGRESSED+RSS";
    } else if (row.regressed) {
      status = "REGRESSED";
    } else if (row.rss_regressed) {
      status = "RSS-REGRESSED";
    }
    table.add_row({row.name, baseline, current, tolerance, base_rss,
                   cur_rss, status});
  }
  std::cout << "Bench gate: " << results_path << " vs " << baseline_path
            << "\n";
  table.print(std::cout);
  if (!report.ok()) {
    std::cout << "FAIL: benchmark regression against " << baseline_path
              << "\n";
    return 1;
  }
  std::cout << "OK: all benchmarks within tolerance\n";
  return 0;
}

/// `topocon bench`: wraps the google-benchmark binaries of the build
/// tree. Positional arguments select binaries (with or without their
/// bench_ prefix); none selects every bench_* in the bench directory.
int cmd_bench(int argc, char** argv, const char* argv0) {
  namespace fs = std::filesystem;
  std::string bench_dir;
  std::string filter;
  int repetitions = 0;
  std::string json_path;
  std::string compare_path;
  std::string input_path;
  std::vector<std::string> names;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (const auto v = sweep::flag_value(arg, "bench-dir")) {
        bench_dir = *v;
      } else if (const auto v = sweep::flag_value(arg, "filter")) {
        filter = *v;
      } else if (const auto v = sweep::flag_value(arg, "compare")) {
        compare_path = *v;
      } else if (const auto v = sweep::flag_value(arg, "input")) {
        input_path = *v;
      } else if (const auto v = sweep::flag_value(arg, "repetitions")) {
        repetitions = sweep::parse_int_value("repetitions", *v);
        if (repetitions < 1) {
          std::cerr << "topocon: --repetitions must be >= 1\n";
          return 2;
        }
      } else if (const auto v = sweep::flag_value(arg, "json")) {
        if (v->empty()) {
          std::cerr << "topocon: --json needs a non-empty path\n";
          return 2;
        }
        json_path = *v;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "topocon: unknown argument '" << arg << "'\n";
        return 2;
      } else {
        names.emplace_back(arg);
      }
    } catch (const std::invalid_argument& error) {
      std::cerr << "topocon: " << error.what() << "\n";
      return 2;
    }
  }

  if (!input_path.empty() && compare_path.empty()) {
    std::cerr << "topocon: --input only makes sense with --compare\n";
    return 2;
  }
  if (!compare_path.empty() && input_path.empty() && json_path.empty()) {
    std::cerr << "topocon: --compare needs benchmark results: add "
                 "--json=PATH to capture a run, or --input=PATH for an "
                 "existing file\n";
    return 2;
  }
  // Pure compare mode: gate an existing results file without running (or
  // even having built) any benchmark binary.
  if (!input_path.empty()) {
    return run_bench_gate(compare_path, input_path);
  }

  // Default bench directory: the build tree's bench/ next to this
  // binary (build/tools/topocon -> build/bench).
  if (bench_dir.empty()) {
    std::error_code ec;
    fs::path exe = fs::read_symlink("/proc/self/exe", ec);
    if (ec) exe = fs::absolute(fs::path(argv0), ec);
    bench_dir = (exe.parent_path().parent_path() / "bench").string();
  }
  std::error_code ec;
  if (!fs::is_directory(bench_dir, ec)) {
    std::cerr << "topocon: bench directory " << bench_dir
              << " does not exist (is this a -DTOPOCON_BUILD_BENCH=ON "
                 "build tree? see --bench-dir)\n";
    return 2;
  }

  std::vector<fs::path> binaries;
  if (names.empty()) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(bench_dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("bench_", 0) == 0 &&
          entry.path().extension().empty()) {
        binaries.push_back(entry.path());
      }
    }
    std::sort(binaries.begin(), binaries.end());
    if (binaries.empty()) {
      std::cerr << "topocon: no bench_* binaries in " << bench_dir << "\n";
      return 2;
    }
  } else {
    for (const std::string& name : names) {
      const fs::path direct = fs::path(bench_dir) / name;
      const fs::path prefixed = fs::path(bench_dir) / ("bench_" + name);
      if (fs::is_regular_file(direct, ec)) {
        binaries.push_back(direct);
      } else if (fs::is_regular_file(prefixed, ec)) {
        binaries.push_back(prefixed);
      } else {
        std::cerr << "topocon: no benchmark binary '" << name << "' in "
                  << bench_dir << "\n";
        return 2;
      }
    }
  }
  if (!json_path.empty() && binaries.size() != 1) {
    std::cerr << "topocon: --json captures one benchmark binary's output; "
                 "name exactly one (got "
              << binaries.size() << ")\n";
    return 2;
  }

  for (const fs::path& binary : binaries) {
    std::string command = shell_quote(binary.string());
    if (!filter.empty()) {
      command += " --benchmark_filter=" + shell_quote(filter);
    }
    if (repetitions > 0) {
      command += " --benchmark_repetitions=" + std::to_string(repetitions);
    }
    if (!json_path.empty()) {
      command += " --benchmark_out=" + shell_quote(json_path) +
                 " --benchmark_out_format=json";
    }
    std::cerr << "topocon bench: " << binary.filename().string() << "\n";
    const int code = std::system(command.c_str());
    if (code != 0) {
      std::cerr << "topocon: " << binary.filename().string()
                << " failed (system() returned " << code << ")\n";
      return 1;
    }
  }
  if (!json_path.empty()) {
    std::cerr << "topocon bench: wrote " << json_path << "\n";
  }
  if (!compare_path.empty()) {
    return run_bench_gate(compare_path, json_path);
  }
  return 0;
}

/// The serve daemon being signalled, for SIGINT/SIGTERM-driven clean
/// shutdown (request_stop is one pipe write, so it is signal-safe).
std::atomic<service::Server*> g_serve_instance{nullptr};

void serve_signal_handler(int) {
  if (service::Server* server = g_serve_instance.load()) {
    server->request_stop();
  }
}

int cmd_serve(int argc, char** argv) {
  service::ServeOptions options;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (const auto v = sweep::flag_value(arg, "socket")) {
        options.socket_path = *v;
      } else if (const auto v = sweep::flag_value(arg, "threads")) {
        options.num_threads = sweep::parse_int_value("threads", *v);
      } else if (const auto v = sweep::flag_value(arg, "queue-limit")) {
        const int limit = sweep::parse_int_value("queue-limit", *v);
        if (limit < 0) {
          std::cerr << "topocon: --queue-limit must be >= 0\n";
          return 2;
        }
        options.queue_limit = static_cast<std::size_t>(limit);
      } else if (const auto v = sweep::flag_value(arg, "cache-entries")) {
        const int entries = sweep::parse_int_value("cache-entries", *v);
        if (entries < 0) {
          std::cerr << "topocon: --cache-entries must be >= 0\n";
          return 2;
        }
        options.cache_entries = static_cast<std::size_t>(entries);
      } else if (const auto v = sweep::flag_value(arg, "cache-mb")) {
        const int mb = sweep::parse_int_value("cache-mb", *v);
        if (mb < 0) {
          std::cerr << "topocon: --cache-mb must be >= 0\n";
          return 2;
        }
        options.cache_bytes = static_cast<std::size_t>(mb) << 20;
      } else if (const auto v = sweep::flag_value(arg, "ring")) {
        const int ring = sweep::parse_int_value("ring", *v);
        if (ring < 2) {
          std::cerr << "topocon: --ring must be >= 2\n";
          return 2;
        }
        options.ring_capacity = static_cast<std::size_t>(ring);
      } else if (const auto v = sweep::flag_value(arg, "spill-budget-mb")) {
        SpillOptions spill = default_spill();
        spill.budget_bytes = spill_budget_mb_to_bytes(
            sweep::parse_uint64_value("spill-budget-mb", *v));
        set_default_spill(spill);
      } else if (const auto v = sweep::flag_value(arg, "spill-dir")) {
        if (v->empty()) {
          std::cerr << "topocon: --spill-dir needs a non-empty path\n";
          return 2;
        }
        SpillOptions spill = default_spill();
        spill.dir = std::string(*v);
        set_default_spill(spill);
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::cerr << "topocon: unknown serve argument '" << arg << "'\n";
        return 2;
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "topocon: " << e.what() << "\n";
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "topocon: serve needs --socket=PATH\n";
    return 2;
  }
  options.log = quiet ? nullptr : &std::cerr;
  if (!quiet) std::cerr << service::version_line() << "\n";
  service::Server server(std::move(options));
  g_serve_instance.store(&server);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  const int code = server.run();
  g_serve_instance.store(nullptr);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  return code;
}

int cmd_client(int argc, char** argv) {
  std::string socket_path;
  std::string out_path;
  bool subscribe = false;
  scenario::GridOverrides overrides;
  std::vector<std::string_view> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (const auto v = sweep::flag_value(arg, "socket")) {
        socket_path = *v;
      } else if (const auto v = sweep::flag_value(arg, "out")) {
        out_path = *v;
      } else if (arg == "--subscribe") {
        subscribe = true;
      } else if (const auto v = sweep::flag_value(arg, "n")) {
        overrides.n = sweep::parse_int_value("n", *v);
      } else if (const auto v = sweep::flag_value(arg, "param-min")) {
        overrides.param_min = sweep::parse_int_value("param-min", *v);
      } else if (const auto v = sweep::flag_value(arg, "param-max")) {
        overrides.param_max = sweep::parse_int_value("param-max", *v);
      } else if (const auto v = sweep::flag_value(arg, "seed")) {
        overrides.seed = sweep::parse_uint64_value("seed", *v);
      } else if (const auto v = sweep::flag_value(arg, "count")) {
        overrides.count = sweep::parse_int_value("count", *v);
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "topocon: unknown client argument '" << arg << "'\n";
        return 2;
      } else {
        positional.push_back(arg);
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "topocon: " << e.what() << "\n";
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "topocon: client needs --socket=PATH\n";
    return 2;
  }
  if (positional.empty()) {
    std::cerr << "topocon: client needs an action "
                 "(submit/stats/shutdown)\n";
    return 2;
  }
  const std::string_view action = positional[0];
  try {
    service::ServeClient client(socket_path);
    std::cerr << client.hello() << "\n";
    if (action == "stats") {
      if (positional.size() != 1) return usage(std::cerr, 2);
      client.send_line("{\"op\":\"stats\"}");
      std::cout << client.read_line() << "\n";
      return 0;
    }
    if (action == "shutdown") {
      if (positional.size() != 1) return usage(std::cerr, 2);
      client.send_line("{\"op\":\"shutdown\"}");
      const std::string reply = client.read_line();
      std::cout << reply << "\n";
      return sweep::JsonReader::parse(reply).at("op").as_string() == "bye"
                 ? 0
                 : 1;
    }
    if (action != "submit" || positional.size() != 2) {
      std::cerr << "topocon: client action must be `submit SCENARIO`, "
                   "`stats`, or `shutdown`\n";
      return 2;
    }
    std::ostringstream request;
    sweep::JsonWriter writer(request, sweep::JsonStyle::kCompact);
    writer.begin_object();
    writer.member("op", "submit");
    writer.member("scenario", positional[1]);
    if (overrides.n.has_value()) writer.member("n", *overrides.n);
    if (overrides.param_min.has_value()) {
      writer.member("param_min", *overrides.param_min);
    }
    if (overrides.param_max.has_value()) {
      writer.member("param_max", *overrides.param_max);
    }
    if (overrides.seed.has_value()) writer.member("seed", *overrides.seed);
    if (overrides.count.has_value()) writer.member("count", *overrides.count);
    writer.end_object();
    if (subscribe) {
      client.send_line("{\"op\":\"subscribe\"}");
      std::cerr << client.read_line() << "\n";
    }
    client.send_line(request.str());
    for (;;) {
      const std::string line = client.read_line();
      const sweep::JsonValue frame = sweep::JsonReader::parse(line);
      const std::string& op = frame.at("op").as_string();
      if (op == "accepted" || op == "event") {
        std::cerr << line << "\n";
        continue;
      }
      if (op == "result") {
        const std::string artifact = client.read_bytes(
            static_cast<std::size_t>(frame.at("artifact_bytes").as_uint()));
        std::cerr << line << "\n";
        if (out_path.empty()) {
          std::cout << artifact;
        } else if (!atomic_write(out_path,
                                 [&](std::ostream& out) { out << artifact; })) {
          return 1;
        }
        return 0;
      }
      // overloaded, error, or anything unexpected: surface and fail.
      std::cerr << "topocon client: " << line << "\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "topocon client: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return usage(std::cout, 0);
  }
  if (command == "version" || command == "--version") {
    std::cout << service::version_line() << "\n";
    return 0;
  }
  if (command == "serve") return cmd_serve(argc, argv);
  if (command == "client") return cmd_client(argc, argv);
  if (command == "list") {
    if (argc != 2) return usage(std::cerr, 2);
    return cmd_list();
  }
  if (command == "describe") {
    if (argc != 3) return usage(std::cerr, 2);
    return cmd_describe(argv[2]);
  }
  if (command == "fuzz") {
    FuzzFlags flags;
    if (!parse_fuzz_flags(argc, argv, &flags)) return 2;
    return cmd_fuzz(flags);
  }
  if (command == "bench") {
    return cmd_bench(argc, argv, argv[0]);
  }
  if (command == "run" || command == "resume") {
    if (argc < 3 || argv[2][0] == '-') return usage(std::cerr, 2);
    RunFlags flags;
    if (!parse_flags(argc, argv, 3, &flags)) return 2;
    if (command == "run") return cmd_run(argv[2], flags);
    if (!flags.json_path.empty() || flags.telemetry_json ||
        flags.overrides.n.has_value() ||
        flags.overrides.param_min.has_value() ||
        flags.overrides.param_max.has_value() ||
        flags.overrides.seed.has_value() ||
        flags.overrides.count.has_value()) {
      std::cerr << "topocon: resume takes the checkpoint PATH plus "
                   "--threads/--chunk/--frontier/--format/--metrics/"
                   "--trace/--fail-after only (--telemetry-json travels "
                   "with the checkpoint)\n";
      return 2;
    }
    return cmd_resume(argv[2], flags);
  }
  std::cerr << "topocon: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}
